/**
 * @file
 * galsbench — the one CLI for every experiment in this repo.
 *
 * Replaces the former 15 hand-rolled bench drivers: each paper
 * figure, ablation and sweep is a registered Scenario; galsbench
 * expands the chosen scenarios into their run grids, executes them on
 * the parallel ExperimentEngine, and renders the results either as
 * the paper-style tables (default) or as raw JSON-lines / CSV
 * records.
 *
 * Sweeps are archivable: `--output PATH` streams every per-run record
 * into a trajectory file (JSON-lines, CSV when PATH ends in .csv, or
 * the compact binary gtrj format when it ends in .gtrj — `galsbench
 * parse` converts the latter back to the exact text bytes) and
 * `--manifest PATH` writes a run manifest (engine, seeds, config
 * hashes); both are byte-identical for any `--jobs` on any machine.
 * `--interval-ticks K` additionally samples per-interval meters (IPC,
 * per-domain energy, FIFO occupancy) every K ticks into each record.
 * `--seeds N` / `--seed-list a,b,c` replicate every grid point across
 * workload seeds, and the table/JSON/CSV reports then carry
 * mean ± 95% CI columns (per-replica rows stay in the trajectory).
 *
 * Sweeps also scale past one machine: `--shard i/N` runs the i-th of
 * N disjoint round-robin slices of every selected scenario's grid,
 * `--merge` fuses the resulting shard trajectories back into the
 * canonical single-machine file (cmp-identical to an unsharded run),
 * `--merge-manifest` does the same for the shard manifests, and
 * `--verify MANIFEST` re-runs an archived manifest and byte-compares
 * the regenerated trajectory against the archived one.
 *
 * Usage:
 *   galsbench --list [--format md]
 *   galsbench --scenario fig05 [--scenario fig09 ...] | --all
 *             [--jobs N] [--format table|json|csv]
 *             [--insts N] [--bench NAME] [--seed N]
 *             [--seeds N | --seed-list a,b,c]
 *             [--shard I/N]
 *             [--output PATH] [--manifest PATH]
 *             [--engine calendar|heap]
 *   galsbench --merge SHARD.jsonl... --output PATH
 *             [--merge-manifest SHARD.json... --manifest PATH]
 *   galsbench --verify MANIFEST [--jobs N]
 *   galsbench dispatch --scenario NAME... --output PATH [...]
 *
 * `dispatch` is the crash-safe orchestration of a whole sweep: it
 * shards the grid, drives `galsbench --shard` worker subprocesses
 * with retry/backoff and straggler kills, streams records with
 * per-record flushing, and resumes an interrupted dispatch from the
 * surviving records (docs/ORCHESTRATION.md).
 *
 * Environment: GALSSIM_INSTS, GALSSIM_BENCH and GALSSIM_ENGINE provide
 * defaults for --insts / --bench / --engine (the first two are the
 * knobs the old drivers honoured).
 */

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <limits>
#include <memory>
#include <mutex>
#include <sstream>
#include <string>
#include <vector>

#include <unistd.h>

#include "bench/register_all.hh"
#include "core/snapshot.hh"
#include "fabric/fabric_config.hh"
#include "runner/engine.hh"
#include "runner/fault.hh"
#include "runner/gtrj.hh"
#include "runner/merge.hh"
#include "runner/orchestrator.hh"
#include "runner/reporter.hh"
#include "runner/scenario.hh"
#include "runner/stats.hh"
#include "runner/trajectory.hh"
#include "sim/event_queue.hh"

using namespace gals;
using namespace gals::runner;

namespace
{

void
usage(std::FILE *to, int exitCode)
{
    std::fprintf(
        to,
        "usage: galsbench --list [--format md]\n"
        "       galsbench (--scenario NAME)... | --all\n"
        "                 [--jobs N] [--format table|json|csv]\n"
        "                 [--insts N] [--bench NAME] [--seed N]\n"
        "                 [--seeds N | --seed-list a,b,c]\n"
        "                 [--shard I/N]\n"
        "                 [--cores A,B,...] [--topology T,...]\n"
        "                 [--traffic P,...] [--interval-ticks K]\n"
        "                 [--warmup-insts K] [--snapshot-dir PATH]\n"
        "                 [--output PATH] [--manifest PATH]\n"
        "                 [--engine calendar|heap]\n"
        "       galsbench --merge SHARD... --output PATH\n"
        "                 [--merge-manifest SHARD... --manifest "
        "PATH]\n"
        "       galsbench --verify MANIFEST [--jobs N]\n"
        "       galsbench parse INPUT.gtrj [--format json|csv]\n"
        "                 [--output PATH]\n"
        "       galsbench dispatch (--scenario NAME)... | --all\n"
        "                 --output PATH [--manifest PATH]\n"
        "                 [--slices M] [--workers W] [--worker-jobs "
        "N]\n"
        "                 [--insts N] [--bench NAME] [--seed N]\n"
        "                 [--seeds N | --seed-list a,b,c] [--engine "
        "E]\n"
        "                 [--cores A,B,...] [--topology T,...]\n"
        "                 [--traffic P,...] [--interval-ticks K]\n"
        "                 [--warmup-insts K] [--snapshot-dir PATH]\n"
        "                 [--retries N] [--backoff-ms N]\n"
        "                 [--backoff-cap-ms N] [--straggler-factor "
        "X]\n"
        "                 [--min-deadline-ms N]\n"
        "                 [--status-interval-ms N] [--fresh]\n"
        "                 [--worker-binary PATH]\n"
        "\n"
        "  --list          list registered scenarios and exit\n"
        "                  (--format md emits the markdown catalog\n"
        "                  that docs/SCENARIOS.md is generated from)\n"
        "  --scenario NAME run one scenario (repeatable)\n"
        "  --all           run every registered scenario\n"
        "  --jobs N        worker threads (0 = all hardware threads;\n"
        "                  default 1; results are identical for any "
        "N)\n"
        "  --format F      table (default), json or csv\n"
        "  --insts N       instructions per run (or GALSSIM_INSTS)\n"
        "  --bench NAME    restrict the benchmark sweep (repeatable,\n"
        "                  or GALSSIM_BENCH)\n"
        "  --seed N        workload seed (default 0)\n"
        "  --seeds N       replicate every grid point over N seeds\n"
        "                  (seed, seed+1, ...); reports show\n"
        "                  mean +/- 95%% CI\n"
        "  --seed-list S   explicit comma-separated replica seeds\n"
        "                  (overrides --seed/--seeds)\n"
        "  --shard I/N     run only the I-th of N disjoint slices of\n"
        "                  every grid (1-based; requires --output\n"
        "                  or --manifest; table/json/csv reports are\n"
        "                  suppressed — merge the shards instead)\n"
        "  --cores A,B     restrict the fabric scenarios' core-count\n"
        "                  sweep (each >= 1; 1 = the single-core\n"
        "                  paper pipeline)\n"
        "  --topology T    restrict the fabric topology sweep:\n"
        "                  ring, mesh2d (comma-separated)\n"
        "  --traffic P     restrict the fabric traffic-matrix sweep:\n"
        "                  none, permutation, uniform, incast,\n"
        "                  hotspot[:K] (comma-separated)\n"
        "  --output PATH   append every per-run record to a\n"
        "                  trajectory file; the extension picks the\n"
        "                  format: .jsonl/.json (JSON lines), .csv,\n"
        "                  or .gtrj (compact binary; `galsbench\n"
        "                  parse` converts it back to text)\n"
        "  --interval-ticks K\n"
        "                  sample per-interval meters every K ticks\n"
        "                  (IPC, per-domain energy, FIFO occupancy);\n"
        "                  records gain an \"intervals\" time-series\n"
        "  --warmup-insts K\n"
        "                  split every single-core run into K warmup\n"
        "                  instructions plus (insts - K) measured\n"
        "                  ones (K must be < --insts); runs sharing\n"
        "                  a warmup stem reuse one memoized warm\n"
        "                  snapshot instead of re-simulating it\n"
        "  --snapshot-dir PATH\n"
        "                  existing directory where warm snapshots\n"
        "                  are exchanged on disk, so separate\n"
        "                  processes (--shard workers, dispatch)\n"
        "                  share warmup stems; never affects the\n"
        "                  records, manifests or hashes\n"
        "  --manifest PATH write a run manifest (version, engine,\n"
        "                  seeds, shard, per-scenario config hashes)\n"
        "  --merge F...    merge shard trajectory files into the\n"
        "                  canonical unsharded ordering at --output\n"
        "  --merge-manifest F...\n"
        "                  merge shard manifests into the canonical\n"
        "                  manifest at --manifest\n"
        "  --verify M      re-run the archived manifest M and byte-\n"
        "                  compare the regenerated trajectory against\n"
        "                  the archived one; non-zero exit on any\n"
        "                  difference\n"
        "  parse INPUT     convert a .gtrj binary trajectory to the\n"
        "                  exact JSON-lines (default) or CSV bytes a\n"
        "                  native text run would have written, to\n"
        "                  --output PATH or stdout\n"
        "  --engine E      event-queue engine: calendar (default) or\n"
        "                  heap (A/B baseline; or GALSSIM_ENGINE).\n"
        "                  Results are identical for either.\n"
        "\n"
        "dispatch runs the whole sweep as a crash-safe orchestration:\n"
        "the grid is split into M slices, worker subprocesses execute\n"
        "them (up to W at a time) with per-record flushing, failed\n"
        "workers are retried with capped exponential backoff, hung\n"
        "workers are killed past a deadline scaled from the median\n"
        "slice time, and re-running the same dispatch resumes from\n"
        "whatever records already survived (kill -9 loses at most one\n"
        "record). Progress: <output>.dispatch/status.json. See\n"
        "docs/ORCHESTRATION.md.\n");
    std::exit(exitCode);
}

const char *
argValue(int argc, char **argv, int &i)
{
    if (i + 1 >= argc) {
        std::fprintf(stderr, "galsbench: %s needs a value\n", argv[i]);
        usage(stderr, 2);
    }
    return argv[++i];
}

std::uint64_t
numericValue(const char *flag, const char *text)
{
    // strtoull silently wraps negatives ("-1" -> 2^64-1) and
    // saturates out-of-range values with only errno to show for it,
    // so reject a leading minus sign explicitly — skipping the same
    // whitespace set strtoull itself skips — and check ERANGE.
    const char *p = text;
    while (std::isspace(static_cast<unsigned char>(*p)))
        ++p;
    char *end = nullptr;
    errno = 0;
    const std::uint64_t v = std::strtoull(text, &end, 10);
    if (*p == '-' || end == text || *end != '\0' ||
        errno == ERANGE) {
        std::fprintf(stderr,
                     "galsbench: %s expects a non-negative number, "
                     "got '%s'\n",
                     flag, text);
        usage(stderr, 2);
    }
    return v;
}

/** numericValue() additionally bounded to `unsigned` range, so
 *  --jobs / --seeds cannot silently truncate through a cast. */
unsigned
unsignedValue(const char *flag, const char *text)
{
    const std::uint64_t v = numericValue(flag, text);
    if (v > std::numeric_limits<unsigned>::max()) {
        std::fprintf(stderr, "galsbench: %s value %s is out of "
                             "range\n",
                     flag, text);
        usage(stderr, 2);
    }
    return static_cast<unsigned>(v);
}

/** Parse the --seed-list value: comma-separated non-negative
 *  integers, at least one. */
std::vector<std::uint64_t>
seedListValue(const char *text)
{
    std::vector<std::uint64_t> seeds;
    const std::string s = text;
    std::size_t pos = 0;
    while (pos <= s.size()) {
        std::size_t comma = s.find(',', pos);
        if (comma == std::string::npos)
            comma = s.size();
        const std::string item = s.substr(pos, comma - pos);
        if (item.empty()) {
            std::fprintf(stderr,
                         "galsbench: --seed-list expects "
                         "comma-separated numbers, got '%s'\n",
                         text);
            usage(stderr, 2);
        }
        seeds.push_back(numericValue("--seed-list", item.c_str()));
        pos = comma + 1;
    }
    return seeds;
}

/** Split a comma-separated flag value; every item must be
 *  non-empty. */
std::vector<std::string>
commaListValue(const char *flag, const char *text)
{
    std::vector<std::string> items;
    const std::string s = text;
    std::size_t pos = 0;
    while (pos <= s.size()) {
        std::size_t comma = s.find(',', pos);
        if (comma == std::string::npos)
            comma = s.size();
        const std::string item = s.substr(pos, comma - pos);
        if (item.empty()) {
            std::fprintf(stderr,
                         "galsbench: %s expects comma-separated "
                         "values, got '%s'\n",
                         flag, text);
            usage(stderr, 2);
        }
        items.push_back(item);
        pos = comma + 1;
    }
    return items;
}

/** Parse the --cores value: comma-separated core counts >= 1. */
std::vector<unsigned>
coreListValue(const char *text)
{
    std::vector<unsigned> cores;
    for (const std::string &item : commaListValue("--cores", text)) {
        const unsigned n = unsignedValue("--cores", item.c_str());
        if (n == 0) {
            std::fprintf(stderr,
                         "galsbench: --cores values must be >= 1, "
                         "got '%s'\n",
                         text);
            usage(stderr, 2);
        }
        cores.push_back(n);
    }
    return cores;
}

/** Parse the --topology value: comma-separated topology names. */
std::vector<std::string>
topologyListValue(const char *text)
{
    std::vector<std::string> topos = commaListValue("--topology", text);
    for (const std::string &t : topos) {
        TopologyKind kind;
        if (!parseTopologyKind(t, kind)) {
            std::fprintf(stderr,
                         "galsbench: --topology expects 'ring' or "
                         "'mesh2d', got '%s'\n",
                         t.c_str());
            usage(stderr, 2);
        }
    }
    return topos;
}

/** Parse the --traffic value: comma-separated traffic-matrix specs
 *  (syntax check only — core-count cross-checks happen in
 *  checkFabricAxes() once --cores is known). */
std::vector<std::string>
trafficListValue(const char *text)
{
    std::vector<std::string> specs = commaListValue("--traffic", text);
    for (const std::string &spec : specs) {
        const std::string err = checkTrafficSpec(spec);
        if (!err.empty()) {
            std::fprintf(stderr, "galsbench: --traffic: %s\n",
                         err.c_str());
            usage(stderr, 2);
        }
    }
    return specs;
}

/** Cross-validate explicit --traffic specs against explicit --cores
 *  counts: a spec referencing core K needs K < N for every fabric
 *  (multi-core) point it will be crossed with. */
void
checkFabricAxes(const SweepOptions &opts)
{
    for (const std::string &spec : opts.traffics)
        for (unsigned n : opts.coreCounts) {
            if (n < 2)
                continue; // single-core points carry no fabric
            std::vector<TrafficFlow> flows;
            const std::string err =
                parseTrafficPattern(spec, n, flows);
            if (!err.empty()) {
                std::fprintf(stderr,
                             "galsbench: --traffic '%s' with --cores "
                             "%u: %s\n",
                             spec.c_str(), n, err.c_str());
                usage(stderr, 2);
            }
        }
}

/** Flush std::cout and turn a write failure into exit 1: reports
 *  and listings must not masquerade as success on a full disk or
 *  dead pipe. */
int
stdoutExitCode()
{
    std::cout.flush();
    if (!std::cout) {
        std::fprintf(stderr, "galsbench: error writing to stdout\n");
        return 1;
    }
    return 0;
}

/** Parse the --shard value "I/N": 1 <= I <= N. */
ShardSpec
shardValue(const char *text)
{
    const std::string s = text;
    const std::size_t slash = s.find('/');
    if (slash == std::string::npos || slash == 0 ||
        slash + 1 >= s.size()) {
        std::fprintf(stderr,
                     "galsbench: --shard expects I/N (e.g. 2/3), "
                     "got '%s'\n",
                     text);
        usage(stderr, 2);
    }
    ShardSpec shard;
    shard.index =
        unsignedValue("--shard", s.substr(0, slash).c_str());
    shard.count =
        unsignedValue("--shard", s.substr(slash + 1).c_str());
    if (shard.index < 1 || shard.count < 1 ||
        shard.index > shard.count) {
        std::fprintf(stderr,
                     "galsbench: --shard %s out of range "
                     "(need 1 <= I <= N)\n",
                     text);
        usage(stderr, 2);
    }
    return shard;
}

/** Consume the file arguments following --merge/--merge-manifest
 *  (every subsequent argv entry up to the next --flag) into
 *  @p files; a repeated flag appends rather than replacing. */
void
fileListValue(const char *flag, int argc, char **argv, int &i,
              std::vector<std::string> &files)
{
    const std::size_t before = files.size();
    while (i + 1 < argc && std::strncmp(argv[i + 1], "--", 2) != 0)
        files.push_back(argv[++i]);
    if (files.size() == before) {
        std::fprintf(stderr,
                     "galsbench: %s needs at least one file\n", flag);
        usage(stderr, 2);
    }
}

/** Strict engine-name parser: unknown values are a usage error with a
 *  clear message, for the flag and the environment variable alike
 *  (gals_fatal would abort with an internal file/line trace). */
QueueEngine
engineValue(const char *source, const char *name)
{
    if (!std::strcmp(name, "calendar"))
        return QueueEngine::calendar;
    if (!std::strcmp(name, "heap"))
        return QueueEngine::heap;
    std::fprintf(stderr,
                 "galsbench: %s expects 'calendar' or 'heap', got '%s'\n",
                 source, name);
    usage(stderr, 2);
    return QueueEngine::calendar; // unreachable
}

/** Strict --output extension check, matching the --engine style:
 *  an unknown extension is a usage error (exit 2), so a typo'd path
 *  cannot silently become a JSON-lines file nobody asked for. */
void
checkOutputPath(const std::string &path)
{
    TrajectoryFormat format;
    if (!trajectoryFormatForCliPath(path, format)) {
        std::fprintf(stderr,
                     "galsbench: --output expects a .jsonl, .json, "
                     ".csv or .gtrj path, got '%s'\n",
                     path.c_str());
        usage(stderr, 2);
    }
}

/** Parse a positive decimal double (for --straggler-factor). */
double
doubleValue(const char *flag, const char *text)
{
    errno = 0;
    char *end = nullptr;
    const double v = std::strtod(text, &end);
    if (end == text || *end != '\0' || errno == ERANGE || v <= 0.0) {
        std::fprintf(stderr,
                     "galsbench: %s expects a positive number, got "
                     "'%s'\n",
                     flag, text);
        usage(stderr, 2);
    }
    return v;
}

/** This binary's own path, for dispatch workers to exec. */
std::string
selfExePath()
{
    char buf[4096];
    const ssize_t n =
        ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
    if (n <= 0)
        return "";
    buf[n] = '\0';
    return buf;
}

/**
 * `galsbench dispatch ...`: the crash-safe sweep orchestrator
 * (runner/orchestrator.hh). argv[1] is "dispatch"; everything after
 * it is parsed here — the run-mode flags keep their meaning, plus
 * the orchestration knobs.
 */
int
dispatchMain(int argc, char **argv, const ScenarioRegistry &registry)
{
    DispatchOptions opts;
    opts.sweep = SweepOptions::fromEnvironment();
    opts.engineName = queueEngineName(EventQueue::defaultEngine());
    opts.workerBinary = selfExePath();
    bool runAll = false;
    std::vector<std::string> cliBenchmarks;

    for (int i = 2; i < argc; ++i) {
        const char *arg = argv[i];
        if (!std::strcmp(arg, "--scenario")) {
            opts.scenarios.push_back(argValue(argc, argv, i));
        } else if (!std::strcmp(arg, "--all")) {
            runAll = true;
        } else if (!std::strcmp(arg, "--output")) {
            opts.outputPath = argValue(argc, argv, i);
        } else if (!std::strcmp(arg, "--manifest")) {
            opts.manifestPath = argValue(argc, argv, i);
        } else if (!std::strcmp(arg, "--slices")) {
            opts.slices =
                unsignedValue("--slices", argValue(argc, argv, i));
        } else if (!std::strcmp(arg, "--workers")) {
            opts.workers =
                unsignedValue("--workers", argValue(argc, argv, i));
        } else if (!std::strcmp(arg, "--worker-jobs")) {
            opts.workerJobs = unsignedValue("--worker-jobs",
                                            argValue(argc, argv, i));
        } else if (!std::strcmp(arg, "--insts")) {
            opts.sweep.instructions =
                numericValue("--insts", argValue(argc, argv, i));
            if (opts.sweep.instructions == 0) {
                std::fprintf(stderr,
                             "galsbench: --insts must be > 0\n");
                return 2;
            }
        } else if (!std::strcmp(arg, "--bench")) {
            cliBenchmarks.push_back(argValue(argc, argv, i));
        } else if (!std::strcmp(arg, "--seed")) {
            opts.sweep.seed =
                numericValue("--seed", argValue(argc, argv, i));
        } else if (!std::strcmp(arg, "--seeds")) {
            opts.sweep.seedReplicas =
                unsignedValue("--seeds", argValue(argc, argv, i));
            if (opts.sweep.seedReplicas == 0) {
                std::fprintf(stderr,
                             "galsbench: --seeds must be > 0\n");
                return 2;
            }
        } else if (!std::strcmp(arg, "--seed-list")) {
            opts.sweep.explicitSeeds =
                seedListValue(argValue(argc, argv, i));
        } else if (!std::strcmp(arg, "--cores")) {
            opts.sweep.coreCounts =
                coreListValue(argValue(argc, argv, i));
        } else if (!std::strcmp(arg, "--topology")) {
            opts.sweep.topologies =
                topologyListValue(argValue(argc, argv, i));
        } else if (!std::strcmp(arg, "--traffic")) {
            opts.sweep.traffics =
                trafficListValue(argValue(argc, argv, i));
        } else if (!std::strcmp(arg, "--interval-ticks")) {
            opts.sweep.intervalTicks = numericValue(
                "--interval-ticks", argValue(argc, argv, i));
            if (opts.sweep.intervalTicks == 0) {
                std::fprintf(stderr,
                             "galsbench: --interval-ticks must be "
                             "> 0\n");
                return 2;
            }
        } else if (!std::strcmp(arg, "--warmup-insts")) {
            opts.sweep.warmupInstructions = numericValue(
                "--warmup-insts", argValue(argc, argv, i));
            if (opts.sweep.warmupInstructions == 0) {
                std::fprintf(stderr,
                             "galsbench: --warmup-insts must be "
                             "> 0\n");
                return 2;
            }
        } else if (!std::strcmp(arg, "--snapshot-dir")) {
            opts.snapshotDir = argValue(argc, argv, i);
            std::error_code ec;
            if (!std::filesystem::is_directory(opts.snapshotDir,
                                               ec)) {
                std::fprintf(stderr,
                             "galsbench: --snapshot-dir '%s' is "
                             "not an existing directory\n",
                             opts.snapshotDir.c_str());
                return 2;
            }
        } else if (!std::strcmp(arg, "--engine")) {
            opts.engineName = queueEngineName(engineValue(
                "--engine", argValue(argc, argv, i)));
        } else if (!std::strcmp(arg, "--retries")) {
            // N retries = N+1 attempts per slice.
            opts.policy.maxAttempts =
                unsignedValue("--retries", argValue(argc, argv, i)) +
                1;
        } else if (!std::strcmp(arg, "--backoff-ms")) {
            opts.policy.backoffBaseMs = numericValue(
                "--backoff-ms", argValue(argc, argv, i));
        } else if (!std::strcmp(arg, "--backoff-cap-ms")) {
            opts.policy.backoffCapMs = numericValue(
                "--backoff-cap-ms", argValue(argc, argv, i));
        } else if (!std::strcmp(arg, "--straggler-factor")) {
            opts.policy.stragglerFactor = doubleValue(
                "--straggler-factor", argValue(argc, argv, i));
        } else if (!std::strcmp(arg, "--min-deadline-ms")) {
            opts.policy.minDeadlineMs = numericValue(
                "--min-deadline-ms", argValue(argc, argv, i));
        } else if (!std::strcmp(arg, "--status-interval-ms")) {
            opts.statusIntervalMs = numericValue(
                "--status-interval-ms", argValue(argc, argv, i));
        } else if (!std::strcmp(arg, "--fresh")) {
            opts.fresh = true;
        } else if (!std::strcmp(arg, "--worker-binary")) {
            opts.workerBinary = argValue(argc, argv, i);
        } else if (!std::strcmp(arg, "--worker-arg")) {
            // TEST-ONLY: forwarded verbatim to every worker launch.
            opts.workerArgs.push_back(argValue(argc, argv, i));
        } else if (!std::strcmp(arg, "--fault-first-attempt")) {
            // TEST-ONLY: I:SPEC injects SPEC (exit-after=K /
            // hang-after=K) into slice I's first attempt only, so
            // the retry runs clean.
            const std::string v = argValue(argc, argv, i);
            const std::size_t colon = v.find(':');
            FaultPlan plan;
            std::string ferr;
            if (colon == std::string::npos ||
                !parseFaultSpec(v.substr(colon + 1), plan, ferr)) {
                std::fprintf(stderr,
                             "galsbench: --fault-first-attempt "
                             "expects SLICE:exit-after=K or "
                             "SLICE:hang-after=K, got '%s'\n",
                             v.c_str());
                return 2;
            }
            const unsigned slice = unsignedValue(
                "--fault-first-attempt",
                v.substr(0, colon).c_str());
            std::vector<std::string> &args =
                opts.firstAttemptArgs[slice];
            if (plan.exitAfter != FaultPlan::disabled) {
                args.push_back("--fault-exit-after");
                args.push_back(std::to_string(plan.exitAfter));
            }
            if (plan.hangAfter != FaultPlan::disabled) {
                args.push_back("--fault-hang-after");
                args.push_back(std::to_string(plan.hangAfter));
            }
        } else if (!std::strcmp(arg, "--help") ||
                   !std::strcmp(arg, "-h")) {
            usage(stdout, 0);
        } else {
            std::fprintf(stderr,
                         "galsbench: unknown dispatch argument "
                         "'%s'\n",
                         arg);
            usage(stderr, 2);
        }
    }

    if (!cliBenchmarks.empty())
        opts.sweep.benchmarks = std::move(cliBenchmarks);
    checkFabricAxes(opts.sweep);
    if (opts.sweep.warmupInstructions > 0 &&
        opts.sweep.warmupInstructions >= opts.sweep.instructions) {
        std::fprintf(stderr,
                     "galsbench: --warmup-insts (%llu) must be < "
                     "the instruction count (%llu)\n",
                     static_cast<unsigned long long>(
                         opts.sweep.warmupInstructions),
                     static_cast<unsigned long long>(
                         opts.sweep.instructions));
        return 2;
    }
    if (runAll) {
        opts.scenarios.clear();
        for (const Scenario &s : registry.all())
            opts.scenarios.push_back(s.name);
    }
    if (opts.scenarios.empty()) {
        std::fprintf(stderr,
                     "galsbench: dispatch needs --scenario/--all\n");
        return 2;
    }
    if (opts.outputPath.empty()) {
        std::fprintf(stderr,
                     "galsbench: dispatch needs --output PATH for "
                     "the merged trajectory\n");
        return 2;
    }
    if (opts.workerBinary.empty()) {
        std::fprintf(stderr,
                     "galsbench: cannot resolve own binary path; "
                     "pass --worker-binary PATH\n");
        return 2;
    }
    checkOutputPath(opts.outputPath);

    DispatchReport report;
    return runDispatch(registry, opts, std::cerr, &report) ? 0 : 1;
}

/**
 * `galsbench parse INPUT.gtrj ...`: offline conversion of a binary
 * trajectory back to the exact text a native text-format run of the
 * same sweep writes — JSON lines byte-identical to `--output
 * foo.jsonl` (CSV likewise) — so binary archives stay greppable and
 * diffable without re-simulating anything.
 */
int
parseMain(int argc, char **argv)
{
    std::string inputPath, outputPath;
    bool csv = false;
    for (int i = 2; i < argc; ++i) {
        const char *arg = argv[i];
        if (!std::strcmp(arg, "--format")) {
            const char *v = argValue(argc, argv, i);
            if (!std::strcmp(v, "json")) {
                csv = false;
            } else if (!std::strcmp(v, "csv")) {
                csv = true;
            } else {
                std::fprintf(stderr,
                             "galsbench: parse --format expects "
                             "'json' or 'csv', got '%s'\n",
                             v);
                usage(stderr, 2);
            }
        } else if (!std::strcmp(arg, "--output")) {
            outputPath = argValue(argc, argv, i);
        } else if (!std::strcmp(arg, "--help") ||
                   !std::strcmp(arg, "-h")) {
            usage(stdout, 0);
        } else if (!std::strncmp(arg, "--", 2)) {
            std::fprintf(stderr,
                         "galsbench: unknown parse argument '%s'\n",
                         arg);
            usage(stderr, 2);
        } else if (inputPath.empty()) {
            inputPath = arg;
        } else {
            std::fprintf(stderr,
                         "galsbench: parse takes one input file, got "
                         "'%s' and '%s'\n",
                         inputPath.c_str(), arg);
            usage(stderr, 2);
        }
    }
    if (inputPath.empty()) {
        std::fprintf(stderr,
                     "galsbench: parse needs an input .gtrj file\n");
        usage(stderr, 2);
    }

    std::ifstream is(inputPath, std::ios::in | std::ios::binary);
    if (!is) {
        std::fprintf(stderr, "galsbench: cannot open '%s'\n",
                     inputPath.c_str());
        return 1;
    }
    std::ostringstream buf;
    buf << is.rdbuf();
    if (is.bad()) {
        std::fprintf(stderr, "galsbench: error reading '%s'\n",
                     inputPath.c_str());
        return 1;
    }

    std::string out, err;
    const bool ok = csv ? gtrj::toCsv(buf.str(), out, err)
                        : gtrj::toJsonLines(buf.str(), out, err);
    if (!ok) {
        std::fprintf(stderr, "galsbench: parse: %s: %s\n",
                     inputPath.c_str(), err.c_str());
        return 1;
    }

    if (outputPath.empty()) {
        std::cout << out;
        return stdoutExitCode();
    }
    std::ofstream os(outputPath, std::ios::out | std::ios::trunc |
                                     std::ios::binary);
    if (os)
        os.write(out.data(),
                 static_cast<std::streamsize>(out.size()));
    os.flush();
    if (!os) {
        // A truncated conversion must not pass for the real thing in
        // a later byte-compare.
        std::fprintf(stderr, "galsbench: error writing '%s'\n",
                     outputPath.c_str());
        std::remove(outputPath.c_str());
        return 1;
    }
    return 0;
}

/**
 * Run one scenario's shard slice with per-record streaming: every
 * finished run is appended and flushed in canonical slice order the
 * moment it and all its predecessors are done, so a crash at any
 * instant loses at most the record being written. @p skip positions
 * (already on disk from a previous attempt) are neither re-simulated
 * nor re-written. faultTick() after each flush is where the injected
 * test faults fire.
 */
void
runSliceStreamed(const ExperimentEngine &engine, TrajectorySink &sink,
                 const std::string &scenario,
                 const std::vector<RunConfig> &shardRuns,
                 const std::vector<std::size_t> &indices,
                 std::size_t skip)
{
    const std::size_t n = shardRuns.size();
    if (skip >= n)
        return;
    std::vector<RunResults> results(n);
    std::vector<char> ready(n, 0);
    std::mutex mu;
    std::size_t next = skip;
    engine.runIndexed(n - skip, [&](std::size_t t) {
        const std::size_t j = skip + t;
        RunResults r = runOne(shardRuns[j]);
        const std::lock_guard<std::mutex> lock(mu);
        results[j] = std::move(r);
        ready[j] = 1;
        // Ordered flush window: drain the contiguous ready prefix.
        while (next < n && ready[next]) {
            sink.appendOne(scenario, shardRuns[next], results[next],
                           indices[next]);
            faultTick();
            ++next;
        }
    });
}

} // namespace

int
main(int argc, char **argv)
{
    ScenarioRegistry registry;
    bench::registerAllScenarios(registry);

    SweepOptions opts = SweepOptions::fromEnvironment();
    if (const char *env = std::getenv("GALSSIM_ENGINE"))
        EventQueue::setDefaultEngine(engineValue("GALSSIM_ENGINE", env));
    // TEST-ONLY (docs/ORCHESTRATION.md): deterministic worker fault
    // injection for the orchestrator's crash-safety tests.
    if (const char *env = std::getenv("GALSSIM_FAULT")) {
        FaultPlan plan;
        std::string ferr;
        if (!parseFaultSpec(env, plan, ferr)) {
            std::fprintf(stderr, "galsbench: GALSSIM_FAULT: %s\n",
                         ferr.c_str());
            return 2;
        }
        setFaultPlan(plan);
    }

    if (argc >= 2 && !std::strcmp(argv[1], "dispatch"))
        return dispatchMain(argc, argv, registry);
    if (argc >= 2 && !std::strcmp(argv[1], "parse"))
        return parseMain(argc, argv);

    std::vector<std::string> selected, cliBenchmarks;
    std::vector<std::string> mergeFiles, mergeManifestFiles;
    std::string outputPath, manifestPath, verifyPath;
    bool listOnly = false, runAll = false, jobsFlag = false;
    unsigned jobs = 1;
    std::uint64_t resumeSkip = 0;
    FaultPlan cliFault;
    OutputFormat format = OutputFormat::table;
    // Sweep-shaping flags that --merge/--verify must reject rather
    // than silently ignore (--verify replays exactly what the
    // manifest records; e.g. --verify --shard would quietly re-run
    // the whole archive, not a slice).
    std::vector<std::string> sweepFlags;

    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        if (!std::strcmp(arg, "--list")) {
            listOnly = true;
        } else if (!std::strcmp(arg, "--all")) {
            runAll = true;
        } else if (!std::strcmp(arg, "--scenario")) {
            selected.push_back(argValue(argc, argv, i));
        } else if (!std::strcmp(arg, "--jobs")) {
            jobs = unsignedValue("--jobs", argValue(argc, argv, i));
            jobsFlag = true;
        } else if (!std::strcmp(arg, "--format")) {
            format = parseOutputFormat(argValue(argc, argv, i));
            sweepFlags.push_back("--format");
        } else if (!std::strcmp(arg, "--insts")) {
            opts.instructions =
                numericValue("--insts", argValue(argc, argv, i));
            sweepFlags.push_back("--insts");
            if (opts.instructions == 0) {
                std::fprintf(stderr,
                             "galsbench: --insts must be > 0\n");
                return 2;
            }
        } else if (!std::strcmp(arg, "--bench")) {
            cliBenchmarks.push_back(argValue(argc, argv, i));
            sweepFlags.push_back("--bench");
        } else if (!std::strcmp(arg, "--seed")) {
            opts.seed =
                numericValue("--seed", argValue(argc, argv, i));
            sweepFlags.push_back("--seed");
        } else if (!std::strcmp(arg, "--seeds")) {
            opts.seedReplicas =
                unsignedValue("--seeds", argValue(argc, argv, i));
            sweepFlags.push_back("--seeds");
            if (opts.seedReplicas == 0) {
                std::fprintf(stderr,
                             "galsbench: --seeds must be > 0\n");
                return 2;
            }
        } else if (!std::strcmp(arg, "--seed-list")) {
            opts.explicitSeeds =
                seedListValue(argValue(argc, argv, i));
            sweepFlags.push_back("--seed-list");
        } else if (!std::strcmp(arg, "--shard")) {
            opts.shard = shardValue(argValue(argc, argv, i));
            sweepFlags.push_back("--shard");
        } else if (!std::strcmp(arg, "--cores")) {
            opts.coreCounts = coreListValue(argValue(argc, argv, i));
            sweepFlags.push_back("--cores");
        } else if (!std::strcmp(arg, "--topology")) {
            opts.topologies =
                topologyListValue(argValue(argc, argv, i));
            sweepFlags.push_back("--topology");
        } else if (!std::strcmp(arg, "--traffic")) {
            opts.traffics =
                trafficListValue(argValue(argc, argv, i));
            sweepFlags.push_back("--traffic");
        } else if (!std::strcmp(arg, "--interval-ticks")) {
            opts.intervalTicks = numericValue(
                "--interval-ticks", argValue(argc, argv, i));
            sweepFlags.push_back("--interval-ticks");
            if (opts.intervalTicks == 0) {
                std::fprintf(stderr,
                             "galsbench: --interval-ticks must be "
                             "> 0\n");
                return 2;
            }
        } else if (!std::strcmp(arg, "--warmup-insts")) {
            opts.warmupInstructions = numericValue(
                "--warmup-insts", argValue(argc, argv, i));
            sweepFlags.push_back("--warmup-insts");
            if (opts.warmupInstructions == 0) {
                std::fprintf(stderr,
                             "galsbench: --warmup-insts must be "
                             "> 0\n");
                return 2;
            }
        } else if (!std::strcmp(arg, "--snapshot-dir")) {
            const std::string dir = argValue(argc, argv, i);
            sweepFlags.push_back("--snapshot-dir");
            std::error_code ec;
            if (!std::filesystem::is_directory(dir, ec)) {
                std::fprintf(stderr,
                             "galsbench: --snapshot-dir '%s' is "
                             "not an existing directory\n",
                             dir.c_str());
                return 2;
            }
            setSnapshotDir(dir);
        } else if (!std::strcmp(arg, "--merge")) {
            fileListValue("--merge", argc, argv, i, mergeFiles);
        } else if (!std::strcmp(arg, "--merge-manifest")) {
            fileListValue("--merge-manifest", argc, argv, i,
                          mergeManifestFiles);
        } else if (!std::strcmp(arg, "--verify")) {
            verifyPath = argValue(argc, argv, i);
        } else if (!std::strcmp(arg, "--output")) {
            outputPath = argValue(argc, argv, i);
        } else if (!std::strcmp(arg, "--manifest")) {
            manifestPath = argValue(argc, argv, i);
        } else if (!std::strcmp(arg, "--engine")) {
            EventQueue::setDefaultEngine(
                engineValue("--engine", argValue(argc, argv, i)));
            sweepFlags.push_back("--engine");
        } else if (!std::strcmp(arg, "--resume-skip")) {
            // Hidden worker flag (galsbench dispatch relaunches):
            // the first N slice records are already on disk — append
            // to --output instead of truncating it, and neither
            // re-simulate nor re-write those positions.
            resumeSkip = numericValue("--resume-skip",
                                      argValue(argc, argv, i));
            sweepFlags.push_back("--resume-skip");
        } else if (!std::strcmp(arg, "--fault-exit-after")) {
            // Hidden TEST-ONLY flags (docs/ORCHESTRATION.md): die or
            // hang after N flushed records.
            cliFault.exitAfter = numericValue(
                "--fault-exit-after", argValue(argc, argv, i));
            sweepFlags.push_back("--fault-exit-after");
        } else if (!std::strcmp(arg, "--fault-hang-after")) {
            cliFault.hangAfter = numericValue(
                "--fault-hang-after", argValue(argc, argv, i));
            sweepFlags.push_back("--fault-hang-after");
        } else if (!std::strcmp(arg, "--help") ||
                   !std::strcmp(arg, "-h")) {
            usage(stdout, 0);
        } else {
            std::fprintf(stderr, "galsbench: unknown argument '%s'\n",
                         arg);
            usage(stderr, 2);
        }
    }

    // Explicit --bench flags override the GALSSIM_BENCH default.
    if (!cliBenchmarks.empty())
        opts.benchmarks = std::move(cliBenchmarks);
    checkFabricAxes(opts);
    // Checked after the whole parse so --insts/--warmup-insts order
    // does not matter.
    if (opts.warmupInstructions > 0 &&
        opts.warmupInstructions >= opts.instructions) {
        std::fprintf(stderr,
                     "galsbench: --warmup-insts (%llu) must be < "
                     "the instruction count (%llu)\n",
                     static_cast<unsigned long long>(
                         opts.warmupInstructions),
                     static_cast<unsigned long long>(
                         opts.instructions));
        return 2;
    }

    if (cliFault.active())
        setFaultPlan(cliFault);
    if (!outputPath.empty())
        checkOutputPath(outputPath);
    if (resumeSkip > 0 &&
        (!opts.shard.active() || outputPath.empty() ||
         trajectoryFormatForPath(outputPath) ==
             TrajectoryFormat::csv)) {
        std::fprintf(stderr,
                     "galsbench: --resume-skip only applies to a "
                     "--shard run with a JSON-lines or gtrj "
                     "--output\n");
        return 2;
    }

    const bool mergeMode =
        !mergeFiles.empty() || !mergeManifestFiles.empty();
    const bool verifyMode = !verifyPath.empty();
    const bool runMode = runAll || !selected.empty();
    if (static_cast<int>(listOnly) + static_cast<int>(mergeMode) +
            static_cast<int>(verifyMode) + static_cast<int>(runMode) >
        1) {
        std::fprintf(stderr,
                     "galsbench: --list, --merge/--merge-manifest, "
                     "--verify and scenario runs are mutually "
                     "exclusive\n");
        return 2;
    }

    // --jobs feeds the ExperimentEngine, which merge mode never
    // runs; treat it like the other mode-irrelevant flags.
    if (mergeMode && jobsFlag)
        sweepFlags.insert(sweepFlags.begin(), "--jobs");
    if ((mergeMode || verifyMode) && !sweepFlags.empty()) {
        std::fprintf(stderr,
                     "galsbench: %s does not apply to %s (the "
                     "%s)\n",
                     sweepFlags.front().c_str(),
                     verifyMode ? "--verify" : "--merge",
                     verifyMode
                         ? "manifest alone defines the replay"
                         : "inputs alone define the merge");
        return 2;
    }

    if (mergeMode) {
        if (!mergeFiles.empty() && outputPath.empty()) {
            std::fprintf(stderr,
                         "galsbench: --merge needs --output PATH for "
                         "the merged trajectory\n");
            return 2;
        }
        if (!mergeManifestFiles.empty() && manifestPath.empty()) {
            std::fprintf(stderr,
                         "galsbench: --merge-manifest needs "
                         "--manifest PATH for the merged manifest\n");
            return 2;
        }
        if (mergeManifestFiles.empty() && !manifestPath.empty()) {
            // Silently skipping the manifest would archive a merged
            // trajectory that a later --verify has nothing to
            // replay against.
            std::fprintf(stderr,
                         "galsbench: --manifest in merge mode needs "
                         "the shard manifests via --merge-manifest\n");
            return 2;
        }
        if (mergeFiles.empty() && !outputPath.empty()) {
            // The symmetric hazard: a merged manifest recording a
            // trajectory this invocation never produced.
            std::fprintf(stderr,
                         "galsbench: --output in merge mode needs "
                         "the shard trajectories via --merge\n");
            return 2;
        }
        // Manifests first: when both are given, the recovered sweep
        // shape is the authoritative completeness check for the
        // trajectory merge.
        bool ok = true;
        MergePlan plan;
        const MergePlan *planPtr = nullptr;
        if (!mergeManifestFiles.empty()) {
            ok = mergeManifests(mergeManifestFiles, manifestPath,
                                outputPath, std::cerr, &plan);
            planPtr = &plan;
        }
        if (ok && !mergeFiles.empty()) {
            ok = mergeTrajectories(mergeFiles, outputPath, std::cerr,
                                   planPtr);
            if (!ok && !mergeManifestFiles.empty()) {
                // Don't leave a canonical-looking manifest behind
                // whose recorded trajectory was never written.
                std::remove(manifestPath.c_str());
                std::fprintf(stderr,
                             "galsbench: removed '%s' (trajectory "
                             "merge failed)\n",
                             manifestPath.c_str());
            }
        }
        return ok ? 0 : 1;
    }

    if (verifyMode) {
        if (!outputPath.empty() || !manifestPath.empty()) {
            std::fprintf(stderr,
                         "galsbench: --verify replays an archived "
                         "manifest; --output/--manifest do not "
                         "apply\n");
            return 2;
        }
        const ExperimentEngine engine(jobs);
        return verifyManifest(registry, engine, verifyPath,
                              std::cerr)
                   ? 0
                   : 1;
    }

    if (listOnly) {
        if (!outputPath.empty() || !manifestPath.empty()) {
            std::fprintf(stderr,
                         "galsbench: --output/--manifest are only "
                         "valid when running scenarios\n");
            return 2;
        }
        if (format == OutputFormat::markdown) {
            // The checked-in catalog documents the registry at stock
            // sweep defaults, deliberately ignoring GALSSIM_INSTS /
            // --insts overrides so the CI drift check is stable in
            // any environment.
            writeScenarioCatalogMarkdown(std::cout, registry,
                                         SweepOptions{});
            return stdoutExitCode();
        }
        std::printf("%-16s %-14s %s\n", "name", "figure",
                    "description");
        for (const Scenario &s : registry.all())
            std::printf("%-16s %-14s %s\n", s.name.c_str(),
                        s.figure.c_str(), s.description.c_str());
        return stdoutExitCode();
    }

    if (format == OutputFormat::markdown) {
        std::fprintf(stderr,
                     "galsbench: --format md is only valid with "
                     "--list\n");
        return 2;
    }

    if (runAll) {
        // --all replaces any --scenario picks (no duplicate runs).
        selected.clear();
        for (const Scenario &s : registry.all())
            selected.push_back(s.name);
    }

    if (selected.empty()) {
        std::fprintf(stderr,
                     "galsbench: no scenario selected (try --list)\n");
        usage(stderr, 2);
    }

    // Resolve every scenario before opening the sink: the sink
    // truncates --output on open, and a typo'd scenario name must
    // not destroy a previously archived trajectory.
    std::vector<const Scenario *> scenarios;
    scenarios.reserve(selected.size());
    for (const std::string &name : selected) {
        const Scenario *scenario = registry.find(name);
        if (!scenario) {
            std::fprintf(stderr,
                         "galsbench: unknown scenario '%s' (try "
                         "--list)\n",
                         name.c_str());
            return 2;
        }
        scenarios.push_back(scenario);
    }

    if (opts.shard.active() && outputPath.empty() &&
        manifestPath.empty()) {
        std::fprintf(stderr,
                     "galsbench: --shard runs a grid slice whose "
                     "reports are suppressed; give --output and/or "
                     "--manifest to keep its records\n");
        return 2;
    }

    std::unique_ptr<TrajectorySink> sink;
    if (!outputPath.empty())
        sink = std::make_unique<TrajectorySink>(outputPath,
                                                resumeSkip > 0);
    std::vector<ManifestScenario> manifestScenarios;

    // Covers exit-after=0 / hang-after=0: the fault fires before the
    // first record of the sweep.
    faultPoint();

    const std::size_t replicas = opts.seedList().size();
    std::uint64_t skipLeft = resumeSkip;
    const ExperimentEngine engine(jobs);
    for (const Scenario *scenario : scenarios) {
        std::size_t gridSize = 0;
        const std::vector<RunConfig> runs =
            expandReplicatedRuns(*scenario, opts, &gridSize);
        // The manifest always describes the canonical full grid —
        // shard manifests differ from the unsharded one only by the
        // shard object and output path, which is what --merge-manifest
        // strips when fusing them back.
        manifestScenarios.push_back({scenario->name, gridSize,
                                     replicas, runConfigHash(runs)});

        if (opts.shard.active()) {
            // Run only this shard's slice; records carry their
            // canonical grid indices so --merge can reassemble the
            // single-machine trajectory byte for byte. The paper
            // tables need the whole grid, so no report is printed
            // here.
            const std::vector<std::size_t> indices =
                shardRunIndices(runs.size(), opts.shard);
            const std::vector<RunConfig> shardRuns =
                selectRuns(runs, indices);
            if (sink) {
                if (sink->format() != TrajectoryFormat::csv) {
                    // Stream + flush record by record (JSON lines or
                    // gtrj frames — both are self-delimiting): this
                    // is what lets `galsbench dispatch` lose at most
                    // one record to a killed worker.
                    const std::size_t skip =
                        std::min<std::uint64_t>(skipLeft,
                                                shardRuns.size());
                    skipLeft -= skip;
                    runSliceStreamed(engine, *sink, scenario->name,
                                     shardRuns, indices, skip);
                } else {
                    const std::vector<RunResults> results =
                        engine.run(shardRuns);
                    sink->append(scenario->name, shardRuns, results,
                                 &indices);
                }
                std::fprintf(stderr,
                             "galsbench: %s: shard %u/%u ran %zu of "
                             "%zu runs\n",
                             scenario->name.c_str(), opts.shard.index,
                             opts.shard.count, shardRuns.size(),
                             runs.size());
            } else {
                // Manifest-only shard invocation: the manifest is a
                // function of the configs alone, so don't burn the
                // slice's simulation time to discard its results.
                std::fprintf(stderr,
                             "galsbench: %s: shard %u/%u manifest "
                             "only (%zu of %zu runs not executed)\n",
                             scenario->name.c_str(), opts.shard.index,
                             opts.shard.count, shardRuns.size(),
                             runs.size());
            }
            continue;
        }

        const std::vector<RunResults> results = engine.run(runs);

        if (sink)
            sink->append(scenario->name, runs, results);

        if (replicas <= 1) {
            switch (format) {
              case OutputFormat::table:
                scenario->reduce(opts, SweepView{results});
                break;
              case OutputFormat::json:
                writeJsonLines(std::cout, scenario->name, runs,
                               results);
                break;
              case OutputFormat::csv:
                writeCsv(std::cout, scenario->name, runs, results);
                break;
              case OutputFormat::markdown:
                break; // rejected above; --list handles md itself
            }
            continue;
        }

        if (gridSize == 0) {
            // Literature-only scenario (empty grid): nothing to
            // aggregate, but its table report is still valid.
            if (format == OutputFormat::table)
                scenario->reduce(opts, SweepView{results});
            continue;
        }

        // The first replica block is the grid the aggregated
        // reports describe.
        const std::vector<RunConfig> gridCfgs(
            runs.begin(),
            runs.begin() + static_cast<std::ptrdiff_t>(gridSize));
        const ReplicaSummary summary =
            summarizeReplicas(gridSize, results);
        switch (format) {
          case OutputFormat::table:
            scenario->reduce(opts, SweepView{summary.mean, &summary});
            writeReplicationTable(std::cout, scenario->name, gridCfgs,
                                  summary);
            break;
          case OutputFormat::json:
            writeJsonLinesSummary(std::cout, scenario->name, gridCfgs,
                                  summary);
            break;
          case OutputFormat::csv:
            writeCsvSummary(std::cout, scenario->name, gridCfgs,
                            summary);
            break;
          case OutputFormat::markdown:
            break;
        }
    }

    if (sink)
        sink->close();
    if (!manifestPath.empty())
        writeManifestFile(manifestPath, opts,
                          queueEngineName(EventQueue::defaultEngine()),
                          outputPath, manifestScenarios);

    return stdoutExitCode();
}
