#include "bench/register_all.hh"

namespace gals::bench
{

void
registerAllScenarios(runner::ScenarioRegistry &reg)
{
    reg.add(fig05Scenario());
    reg.add(fig06Scenario());
    reg.add(fig07Scenario());
    reg.add(fig08Scenario());
    reg.add(fig09Scenario());
    reg.add(fig10Scenario());
    reg.add(fig11Scenario());
    reg.add(fig12Scenario());
    reg.add(fig13Scenario());
    reg.add(table1Scenario());
    reg.add(phaseSensitivityScenario());
    reg.add(ablationFifoScenario());
    reg.add(ablationDynamicDvfsScenario());
    reg.add(quickstartScenario());
    reg.add(suiteScenario());
    reg.add(dvfsExplorerScenario());
    reg.add(fabricPerfScenario());
    reg.add(fabricTopoScenario());
    reg.add(fabricSmokeScenario());
}

} // namespace gals::bench
