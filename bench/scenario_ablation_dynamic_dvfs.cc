/**
 * @file
 * Extension experiment: application-driven dynamic DVFS (the future
 * direction named in the paper's conclusion), compared against the
 * static per-benchmark policies of section 5.2.
 *
 * For each benchmark: base synchronous run, plain GALS run, GALS with
 * the *static* oracle-style FP slowdown (the paper's approach, which
 * needs offline knowledge of the application), and GALS with the
 * *dynamic* controller that discovers per-domain utilization online
 * and retunes clock/voltage at run time (RunConfig::dynamicDvfs).
 */

#include <cstdio>

#include "bench/bench_util.hh"
#include "bench/register_all.hh"
#include "dvfs/dvfs_policy.hh"

namespace gals::bench
{

using namespace gals::runner;

namespace
{

const char *const dvfsBenchmarks[] = {"gcc", "perl", "fpppp", "mpeg2"};

/** Runs appended per benchmark: plain pair, static pair, dynamic. */
constexpr std::size_t runsPerBench = 5;

} // namespace

Scenario
ablationDynamicDvfsScenario()
{
    Scenario s;
    s.name = "ablation-dvfs";
    s.figure = "Extension";
    s.description =
        "dynamic application-driven DVFS vs static policies";

    s.makeRuns = [](const SweepOptions &opts) {
        std::vector<RunConfig> runs;
        for (const char *bench : dvfsBenchmarks) {
            appendPair(runs, bench, opts.instructions, DvfsSetting(),
                       opts.seed);
            appendPair(runs, bench, opts.instructions,
                       gccFpPolicy(1).setting, opts.seed);

            RunConfig dyn;
            dyn.benchmark = bench;
            dyn.instructions = opts.instructions;
            dyn.gals = true;
            dyn.dynamicDvfs = true;
            dyn.seed = opts.seed;
            runs.push_back(std::move(dyn));
        }
        return runs;
    };

    s.reduce = [](const SweepOptions &opts, const SweepView &sweep) {
        const std::vector<RunResults> &results = sweep.runs;
        figureHeader("Extension",
                     "dynamic application-driven DVFS vs static "
                     "policies (paper section 6)",
                     opts);

        std::printf("%-10s | %-23s | %8s %8s %8s\n", "benchmark",
                    "config", "perf", "energy", "power");

        for (std::size_t b = 0;
             b < sizeof(dvfsBenchmarks) / sizeof(dvfsBenchmarks[0]);
             ++b) {
            const std::size_t off = b * runsPerBench;
            const RunResults &base = results[off];
            const RunResults &plainG = results[off + 1];
            const RunResults &statBase = results[off + 2];
            const RunResults &statG = results[off + 3];
            const RunResults &dyn = results[off + 4];

            std::printf("%-10s | %-23s | %8.3f %8.3f %8.3f\n",
                        dvfsBenchmarks[b], "gals (no dvfs)",
                        plainG.ipcNominal / base.ipcNominal,
                        plainG.energyJ / base.energyJ,
                        plainG.avgPowerW / base.avgPowerW);
            std::printf("%-10s | %-23s | %8.3f %8.3f %8.3f\n",
                        dvfsBenchmarks[b], "static fetch-10% fp-50%",
                        statG.ipcNominal / statBase.ipcNominal,
                        statG.energyJ / statBase.energyJ,
                        statG.avgPowerW / statBase.avgPowerW);
            std::printf("%-10s | %-23s | %8.3f %8.3f %8.3f\n\n",
                        dvfsBenchmarks[b], "dynamic (fp online)",
                        dyn.ipcNominal / base.ipcNominal,
                        dyn.energyJ / base.energyJ,
                        dyn.avgPowerW / base.avgPowerW);
        }

        std::printf("reading: the dynamic controller approaches the "
                    "static oracle's savings on integer codes without "
                    "offline profiling, and backs off on fp/memory-"
                    "bound codes.\n");
    };

    return s;
}

} // namespace gals::bench
