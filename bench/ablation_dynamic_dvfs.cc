/**
 * @file
 * Extension experiment: application-driven dynamic DVFS (the future
 * direction named in the paper's conclusion), compared against the
 * static per-benchmark policies of section 5.2.
 *
 * For each benchmark: base synchronous run, plain GALS run, GALS with
 * the *static* oracle-style FP slowdown (the paper's approach, which
 * needs offline knowledge of the application), and GALS with the
 * *dynamic* controller that discovers per-domain utilization online
 * and retunes clock/voltage at run time.
 */

#include <cstdio>

#include "bench/bench_util.hh"
#include "dvfs/controller.hh"
#include "dvfs/dvfs_policy.hh"

using namespace gals;
using namespace gals::bench;

namespace
{

struct Outcome
{
    double perf, energy, power;
};

Outcome
dynamicRun(const std::string &bench, std::uint64_t insts,
           const RunResults &base)
{
    EventQueue eq;
    ProcessorConfig pc;
    pc.gals = true;
    Processor proc(eq, pc, findBenchmark(bench), 0);

    // Manage the FP domain (the paper's section 5.2 examples all slow
    // the FP clock); memory and fetch stay at nominal — their issue
    // slots are a poor utilization proxy because loads are
    // latency-critical.
    DynamicDvfsController ctrl(eq, pc.tech);
    ctrl.manage(proc.domain(DomainId::fpd),
                [&proc] { return proc.fpCluster().issued(); },
                pc.core.fpIssueWidth);
    ctrl.start();
    proc.run(insts);
    ctrl.stop();

    const double time = tickToSeconds(proc.runTicks());
    const double energy = proc.finalizeEnergyNj() * 1e-9;
    const double ipc =
        insts / (static_cast<double>(proc.runTicks()) /
                 pc.nominalPeriod);
    return {ipc / base.ipcNominal, energy / base.energyJ,
            (energy / time) / base.avgPowerW};
}

} // namespace

int
main()
{
    figureHeader("Extension", "dynamic application-driven DVFS vs "
                              "static policies (paper section 6)");

    const auto insts = runInstructions();
    std::printf("%-10s | %-23s | %8s %8s %8s\n", "benchmark", "config",
                "perf", "energy", "power");

    for (const std::string bench : {"gcc", "perl", "fpppp", "mpeg2"}) {
        RunConfig rb;
        rb.benchmark = bench;
        rb.instructions = insts;
        const RunResults base = runOne(rb);

        const PairResults plain = runPair(bench, insts);
        std::printf("%-10s | %-23s | %8.3f %8.3f %8.3f\n",
                    bench.c_str(), "gals (no dvfs)",
                    plain.galsRun.ipcNominal / plain.base.ipcNominal,
                    plain.energyRatio(), plain.powerRatio());

        const PairResults stat =
            runPair(bench, insts, gccFpPolicy(1).setting);
        std::printf("%-10s | %-23s | %8.3f %8.3f %8.3f\n",
                    bench.c_str(), "static fetch-10% fp-50%",
                    stat.galsRun.ipcNominal / stat.base.ipcNominal,
                    stat.energyRatio(), stat.powerRatio());

        const Outcome dyn = dynamicRun(bench, insts, base);
        std::printf("%-10s | %-23s | %8.3f %8.3f %8.3f\n\n",
                    bench.c_str(), "dynamic (fp online)",
                    dyn.perf, dyn.energy, dyn.power);
    }

    std::printf("reading: the dynamic controller approaches the static "
                "oracle's savings on integer codes without offline "
                "profiling, and backs off on fp/memory-bound codes.\n");
    return 0;
}
