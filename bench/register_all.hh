/**
 * @file
 * Explicit registration of every shipped scenario. One factory per
 * scenario_*.cc file; registerAllScenarios() adds them in paper order.
 * Explicit calls (rather than static-initializer self-registration)
 * keep the scenario set deterministic under static linking.
 */

#ifndef BENCH_REGISTER_ALL_HH
#define BENCH_REGISTER_ALL_HH

#include "runner/scenario.hh"

namespace gals::bench
{

/** @name Paper figures */
/// @{
runner::Scenario fig05Scenario();
runner::Scenario fig06Scenario();
runner::Scenario fig07Scenario();
runner::Scenario fig08Scenario();
runner::Scenario fig09Scenario();
runner::Scenario fig10Scenario();
runner::Scenario fig11Scenario();
runner::Scenario fig12Scenario();
runner::Scenario fig13Scenario();
runner::Scenario table1Scenario();
/// @}

/** @name Ablations and extensions */
/// @{
runner::Scenario phaseSensitivityScenario();
runner::Scenario ablationFifoScenario();
runner::Scenario ablationDynamicDvfsScenario();
/// @}

/** @name Exploration tools (the former examples/) */
/// @{
runner::Scenario quickstartScenario();
runner::Scenario suiteScenario();
runner::Scenario dvfsExplorerScenario();
/// @}

/** @name Multi-core fabric (fabric/system.hh) */
/// @{
runner::Scenario fabricPerfScenario();
runner::Scenario fabricTopoScenario();
runner::Scenario fabricSmokeScenario();
/// @}

/** Register every scenario above. */
void registerAllScenarios(runner::ScenarioRegistry &reg);

} // namespace gals::bench

#endif // BENCH_REGISTER_ALL_HH
