/**
 * @file
 * Paper Figure 11: selective clock slowdown applied generically to
 * three benchmarks — fetch and memory clocks slowed by 10%, floating
 * point clock slowed by 50%, with supply voltages scaled per
 * equation 1 (alpha = 1.6).
 *
 * Paper result: energy and power benefits are decent but performance
 * losses are substantial (~18%); the lesson is that slowdown must be
 * applied selectively per application. Also reproduces the section 5.2
 * perl case: FP clock slowed 3x costs 9% performance and saves 10.8%
 * energy / 18% power.
 */

#include <cstdio>

#include "bench/bench_util.hh"
#include "dvfs/dvfs_policy.hh"

using namespace gals;
using namespace gals::bench;

int
main()
{
    figureHeader("Figure 11", "generic selective slowdown "
                              "(fetch -10%, mem -10%, fp -50%)");

    const auto insts = runInstructions();
    const DvfsPolicy policy = genericSlowdownPolicy();

    std::printf("%-10s %10s %10s %10s %10s\n", "benchmark", "perf",
                "energy", "ideal", "power");

    MeanTracker perf;
    for (const std::string name : {"perl", "ijpeg", "gcc"}) {
        const PairResults pr =
            runPair(name, insts, policy.setting);
        const double rel =
            pr.galsRun.ipcNominal / pr.base.ipcNominal;
        const IdealScaling ideal =
            idealScalingForPerf(rel, defaultTech());
        std::printf("%-10s %10.3f %10.3f %10.3f %10.3f\n",
                    name.c_str(), rel, pr.energyRatio(),
                    ideal.energyFactor, pr.powerRatio());
        perf.add(rel);
    }
    std::printf("\npaper: performance loss ~18%% with decent "
                "energy/power benefit; measured loss %.1f%%\n",
                100.0 * (1.0 - perf.mean()));

    // Section 5.2 perl case: FP clock slowed by a factor of 3.
    const DvfsPolicy perl3 = perlFpPolicy();
    const PairResults pp = runPair("perl", insts, perl3.setting);
    std::printf("\nperl with FP clock / 3 (section 5.2):\n");
    std::printf("  perf drop %.1f%% (paper 9%%), energy saving %.1f%% "
                "(paper 10.8%%), power saving %.1f%% (paper 18%%)\n",
                100.0 * (1.0 - pp.galsRun.ipcNominal /
                                   pp.base.ipcNominal),
                100.0 * (1.0 - pp.energyRatio()),
                100.0 * (1.0 - pp.powerRatio()));
    return 0;
}
