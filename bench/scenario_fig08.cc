/**
 * @file
 * Paper Figure 8: percentage of mis-speculated (wrong-path)
 * instructions in the base and GALS processors, plus the section 5.1
 * occupancy observations (in-flight instructions, register allocation
 * table and issue queue occupancies are all higher in GALS).
 *
 * Paper result: speculation rises in GALS — for the integer
 * applications from 13.8% to 16.7% on average — because the effective
 * pipeline is longer, so more wrong-path instructions enter before a
 * mispredicted branch redirects the front end. The paper also reports
 * the ijpeg integer rename occupancy rising from 15 in base to 24 in
 * GALS.
 */

#include <cstdio>

#include "bench/bench_util.hh"
#include "bench/register_all.hh"

namespace gals::bench
{

using namespace gals::runner;

Scenario
fig08Scenario()
{
    Scenario s;
    s.name = "fig08";
    s.figure = "Figure 8";
    s.description = "mis-speculated instructions and occupancies";

    s.makeRuns = [](const SweepOptions &opts) {
        std::vector<RunConfig> runs;
        for (const auto &name : opts.benchmarkSet())
            appendPair(runs, name, opts.instructions, DvfsSetting(),
                       opts.seed);
        // Extra pair for the paper's ijpeg RAT-occupancy observation.
        appendPair(runs, "ijpeg", opts.instructions, DvfsSetting(),
                   opts.seed);
        return runs;
    };

    s.reduce = [](const SweepOptions &opts, const SweepView &sweep) {
        const std::vector<RunResults> &results = sweep.runs;
        figureHeader("Figure 8",
                     "mis-speculated instructions and occupancies",
                     opts);

        const auto names = opts.benchmarkSet();
        std::printf("%-10s | %7s %7s | %7s %7s | %7s %7s | %7s %7s\n",
                    "benchmark", "wp%% B", "wp%% G", "rob B", "rob G",
                    "ratB", "ratG", "iqB", "iqG");

        ArithmeticMeanTracker wpB, wpG, intWpB, intWpG;
        for (std::size_t i = 0; i < names.size(); ++i) {
            const PairResults pr = pairAt(results, i);
            const auto &b = pr.base;
            const auto &g = pr.galsRun;
            std::printf("%-10s | %7.2f %7.2f | %7.1f %7.1f | %7.1f "
                        "%7.1f | %7.1f %7.1f\n",
                        names[i].c_str(), 100 * b.misspecFraction,
                        100 * g.misspecFraction, b.avgRobOcc,
                        g.avgRobOcc, b.avgIntRenames, g.avgIntRenames,
                        b.intIQOcc + b.fpIQOcc + b.memIQOcc,
                        g.intIQOcc + g.fpIQOcc + g.memIQOcc);
            wpB.add(b.misspecFraction);
            wpG.add(g.misspecFraction);
            const auto &prof = findBenchmark(names[i]);
            if (prof.suite == "spec95int") {
                intWpB.add(b.misspecFraction);
                intWpG.add(g.misspecFraction);
            }
        }

        std::printf("\nall:     base %.1f%% -> gals %.1f%% "
                    "(relative growth %+.0f%%)\n",
                    100 * wpB.mean(), 100 * wpG.mean(),
                    100 * (wpG.mean() / wpB.mean() - 1.0));
        std::printf("integer: base %.1f%% -> gals %.1f%% "
                    "(paper: 13.8%% -> 16.7%%, i.e. +21%% relative)\n",
                    100 * intWpB.mean(), 100 * intWpG.mean());

        // The ijpeg RAT-occupancy observation (last appended pair).
        const PairResults ij = pairAt(results, names.size());
        std::printf("ijpeg int renames in flight: base %.1f -> gals "
                    "%.1f (paper: 15 -> 24)\n",
                    ij.base.avgIntRenames, ij.galsRun.avgIntRenames);
    };

    return s;
}

} // namespace gals::bench
