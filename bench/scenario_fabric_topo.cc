/**
 * @file
 * Fabric extension: topology x traffic-matrix sensitivity of the
 * GALS fabric at a fixed core count (default 8 cores, gcc).
 *
 * Every point is one GALS run; the table compares ring vs 2D-mesh
 * routing under the four traffic matrices (permutation, uniform,
 * incast, hotspot) on per-core IPC, fabric round-trip latency and
 * remote-window stalls.
 */

#include <cstdio>

#include "bench/bench_util.hh"
#include "bench/register_all.hh"
#include "fabric/fabric_config.hh"

namespace gals::bench
{

using namespace gals::runner;

namespace
{

struct TopoPoint
{
    unsigned cores;
    std::string topology;
    std::string traffic;
};

std::vector<TopoPoint>
fabricTopoPoints(const SweepOptions &opts)
{
    std::vector<TopoPoint> points;
    for (unsigned c : opts.coreSet({8})) {
        for (const std::string &topo :
             opts.topologySet({"ring", "mesh2d"})) {
            for (const std::string &traffic : opts.trafficSet(
                     {"permutation", "uniform", "incast", "hotspot"})) {
                points.push_back({c, topo, traffic});
                if (c == 1)
                    break;
            }
            if (c == 1)
                break;
        }
    }
    return points;
}

} // namespace

Scenario
fabricTopoScenario()
{
    Scenario s;
    s.name = "fabric_topo";
    s.figure = "Fabric ext.";
    s.description =
        "Topology x traffic-matrix sensitivity of the GALS fabric";

    s.makeRuns = [](const SweepOptions &opts) {
        std::vector<RunConfig> runs;
        const std::string bench = primaryBenchmark(opts, "gcc");
        for (const TopoPoint &p : fabricTopoPoints(opts)) {
            RunConfig cfg;
            cfg.benchmark = bench;
            cfg.instructions = opts.instructions;
            cfg.gals = true;
            cfg.seed = opts.seed;
            if (p.cores > 1) {
                cfg.fabric.cores = p.cores;
                parseTopologyKind(p.topology, cfg.fabric.topology);
                cfg.fabric.traffic = p.traffic;
            }
            runs.push_back(cfg);
        }
        return runs;
    };

    s.reduce = [](const SweepOptions &opts, const SweepView &sweep) {
        const std::vector<RunResults> &results = sweep.runs;
        figureHeader("Fabric extension",
                     "topology x traffic sensitivity (GALS)", opts);

        const std::vector<TopoPoint> points = fabricTopoPoints(opts);
        std::printf("%5s %-7s %-12s %9s %9s %10s %12s\n", "cores",
                    "topo", "traffic", "IPC", "lat(cyc)",
                    "rem.stall", "energy (J)");
        for (std::size_t i = 0;
             i < points.size() && i < results.size(); ++i) {
            const TopoPoint &p = points[i];
            const RunResults &r = results[i];
            double lat = 0.0;
            std::uint64_t stalls = 0;
            for (const CoreResults &c : r.cores) {
                lat += c.avgRemoteLatencyCycles;
                stalls += c.remoteStallCycles;
            }
            if (!r.cores.empty())
                lat /= double(r.cores.size());
            std::printf("%5u %-7s %-12s %9.3f %9.1f %10llu %12.4e\n",
                        p.cores, p.topology.c_str(),
                        p.traffic.c_str(), r.ipcNominal, lat,
                        static_cast<unsigned long long>(stalls),
                        r.energyJ);
        }
        std::printf("\n(lat = mean fabric round-trip latency in "
                    "nominal cycles; rem.stall = fetch cycles lost "
                    "to the remote-completion window)\n");
    };

    return s;
}

} // namespace gals::bench
