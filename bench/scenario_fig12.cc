/**
 * @file
 * Paper Figure 12: impact of selective fetch, memory and FP clock
 * slowdown on ijpeg. The fetch clock is slowed by 10%, the FP clock by
 * 20%, and the memory clock by 0/10/20/50% (gals-00/10/20/50); ijpeg
 * is chosen because of its very low proportion of memory accesses.
 *
 * The "ideal" column is the fully synchronous processor slowed
 * uniformly (single clock, single scaled voltage) to the same
 * performance, which bounds the achievable energy at that performance.
 *
 * Paper result: energy savings between 4 and 13% for performance drops
 * between 15 and 25%; slowing the memory clock is NOT a good
 * performance-energy tradeoff for this benchmark (the GALS energy sits
 * well above the ideal line).
 */

#include <cstdio>

#include "bench/bench_util.hh"
#include "bench/register_all.hh"
#include "dvfs/dvfs_policy.hh"

namespace gals::bench
{

using namespace gals::runner;

Scenario
fig12Scenario()
{
    Scenario s;
    s.name = "fig12";
    s.figure = "Figure 12";
    s.description =
        "ijpeg: fetch -10%, fp -20%, memory clock sweep";

    s.makeRuns = [](const SweepOptions &opts) {
        std::vector<RunConfig> runs;
        for (const DvfsPolicy &policy : ijpegSweepPolicies())
            appendPair(runs, "ijpeg", opts.instructions,
                       policy.setting, opts.seed);
        return runs;
    };

    s.reduce = [](const SweepOptions &opts, const SweepView &sweep) {
        const std::vector<RunResults> &results = sweep.runs;
        figureHeader("Figure 12",
                     "ijpeg: fetch -10%, fp -20%, memory clock sweep "
                     "(gals-00/10/20/50)",
                     opts);

        std::printf("%-9s %10s %10s %10s %10s\n", "config", "perf",
                    "energy", "ideal", "power");

        const auto policies = ijpegSweepPolicies();
        for (std::size_t i = 0; i < policies.size(); ++i) {
            const PairResults pr = pairAt(results, i);
            const double rel =
                pr.galsRun.ipcNominal / pr.base.ipcNominal;
            const IdealScaling ideal =
                idealScalingForPerf(rel, defaultTech());
            std::printf("%-9s %10.3f %10.3f %10.3f %10.3f\n",
                        policies[i].name.c_str(), rel,
                        pr.energyRatio(), ideal.energyFactor,
                        pr.powerRatio());
        }

        std::printf("\npaper: energy savings 4-13%%, performance drop "
                    "15-25%%; memory-clock slowdown is a poor "
                    "tradeoff for ijpeg (GALS energy well above the "
                    "ideal bound).\n");
    };

    return s;
}

} // namespace gals::bench
