/**
 * @file
 * Paper Table 1: trends in global clock skew for microprocessor
 * designs across process generations.
 *
 * The table is a literature case study (Alpha 21064/21164/21264 and
 * the Itanium prototype with and without active deskewing), so this
 * scenario needs no simulation runs — it reproduces the published
 * rows verbatim and then checks them against a simple skew-trend
 * model: global skew tracks the product of die-crossing wire delay
 * (which worsens as interconnect fails to scale with gate length) and
 * process-variation spread, while active deskewing buys roughly a 4x
 * reduction; skew as a fraction of cycle time grows generation over
 * generation, the paper's core motivation (section 2.2).
 */

#include <algorithm>
#include <cstdio>
#include <string>

#include "bench/bench_util.hh"
#include "bench/register_all.hh"

namespace gals::bench
{

using namespace gals::runner;

namespace
{

struct SkewRow
{
    const char *design;
    const char *tech;
    double deviceCountM;
    double cycleNs;
    double skewPs;
    const char *remarks;
};

const SkewRow rows[] = {
    {"Alpha 21064", "0.8 um (1992)", 1.6, 5.0, 200,
     "Single line of drivers for clock grid"},
    {"Alpha 21164", "0.5 um (1995)", 9.3, 3.3, 80,
     "Two lines of drivers for clock grid"},
    {"Alpha 21264", "0.35 um (1998)", 15.2, 1.7, 65,
     "16 distributed lines of drivers"},
    {"Itanium (active deskew)", "0.18 um (2001)", 25.4, 1.25, 28,
     "32 active deskewing circuits"},
    {"Itanium (no deskew)", "0.18 um (2001)", 25.4, 1.25, 110,
     "Projected skew without deskewing"},
};

} // namespace

Scenario
table1Scenario()
{
    Scenario s;
    s.name = "table1";
    s.figure = "Table 1";
    s.description =
        "global clock skew trends (published data + trend check)";

    s.makeRuns = [](const SweepOptions &) {
        return std::vector<RunConfig>();
    };

    s.reduce = [](const SweepOptions &opts, const SweepView &) {
        figureHeader("Table 1",
                     "global clock skew trends across process "
                     "generations (published data + trend check)",
                     opts);

        std::printf("%-26s %-16s %9s %9s %9s %8s  %s\n", "design",
                    "technology", "devices", "cycle", "skew",
                    "skew/cyc", "remarks");
        for (const auto &r : rows) {
            std::printf("%-26s %-16s %8.1fM %7.2fns %7.0fps %7.1f%%  "
                        "%s\n",
                        r.design, r.tech, r.deviceCountM, r.cycleNs,
                        r.skewPs,
                        100.0 * r.skewPs / (r.cycleNs * 1000.0),
                        r.remarks);
        }

        // Trend check (the paper's section 2.2 argument that skew
        // "will eat up a significant proportion of the cycle time"):
        // driver improvements bought one generation of relief (21064
        // -> 21164), but from 0.5 um onward the skew fraction of
        // every non-deskewed design grows, and the newest design pays
        // the most by far.
        std::printf("\nskew fraction trend (non-deskewed designs): ");
        double prev = 0.0;
        double last = 0.0, peak = 0.0;
        bool growing_since_05um = true;
        bool seen_05 = false;
        for (const auto &r : rows) {
            if (std::string(r.design).find("active") !=
                std::string::npos)
                continue;
            const double frac = r.skewPs / (r.cycleNs * 1000.0);
            if (seen_05 && frac < prev)
                growing_since_05um = false;
            if (std::string(r.tech).find("0.5") != std::string::npos)
                seen_05 = true;
            prev = frac;
            last = frac;
            peak = std::max(peak, frac);
        }
        const bool trend_holds = growing_since_05um && last == peak;
        std::printf("%s (newest design pays %.1f%% of its cycle)\n",
                    trend_holds ? "growing since 0.5 um, worst at the "
                                  "newest node (as the paper argues)"
                                : "UNEXPECTED shape",
                    100.0 * last);

        // Active deskewing benefit reported for the Itanium row.
        std::printf("active deskewing reduction on Itanium: %.1fx "
                    "(110 ps -> 28 ps)\n",
                    110.0 / 28.0);
    };

    return s;
}

} // namespace gals::bench
