/**
 * @file
 * Paper Figure 10: breakdown of base and GALS energy into macro
 * blocks — the clock grids (global + five local), caches, predictor,
 * rename logic, register files, issue windows and ALUs.
 *
 * Paper result: the energy gained by eliminating the global clock grid
 * is offset by increased consumption in the other blocks (plus the
 * FIFOs), so the stacked GALS bar is about as tall as the base bar.
 */

#include <cstdio>

#include "bench/bench_util.hh"
#include "bench/register_all.hh"

namespace gals::bench
{

using namespace gals::runner;

Scenario
fig10Scenario()
{
    Scenario s;
    s.name = "fig10";
    s.figure = "Figure 10";
    s.description =
        "energy breakdown into macro blocks (one benchmark)";

    s.makeRuns = [](const SweepOptions &opts) {
        std::vector<RunConfig> runs;
        appendPair(runs, primaryBenchmark(opts, "gcc"),
                   opts.instructions, DvfsSetting(), opts.seed);
        return runs;
    };

    s.reduce = [](const SweepOptions &opts, const SweepView &sweep) {
        const std::vector<RunResults> &results = sweep.runs;
        figureHeader("Figure 10",
                     "energy breakdown into macro blocks "
                     "(normalized to base total)",
                     opts);

        const std::string bench = primaryBenchmark(opts, "gcc");
        const PairResults pr = pairAt(results, 0);

        double base_total = 0.0;
        for (const auto &[u, nj] : pr.base.unitEnergyNj)
            base_total += nj;

        std::printf("benchmark: %s (normalized to base total = "
                    "1.0)\n\n",
                    bench.c_str());
        std::printf("%-16s %10s %10s\n", "macro block", "base", "gals");

        double gals_total = 0.0;
        for (const auto &[unit, base_nj] : pr.base.unitEnergyNj) {
            const double gals_nj = pr.galsRun.unitEnergyNj.at(unit);
            gals_total += gals_nj;
            if (base_nj == 0.0 && gals_nj == 0.0)
                continue;
            std::printf("%-16s %10.4f %10.4f\n", unit.c_str(),
                        base_nj / base_total, gals_nj / base_total);
        }
        std::printf("%-16s %10.4f %10.4f\n", "TOTAL", 1.0,
                    gals_total / base_total);

        const double base_global =
            pr.base.unitEnergyNj.at("global_clock") / base_total;
        const double gals_global =
            pr.galsRun.unitEnergyNj.at("global_clock") / base_total;
        const double gals_fifo =
            pr.galsRun.unitEnergyNj.at("async_fifos") / base_total;
        std::printf("\nglobal clock: base %.1f%% of total -> gals "
                    "%.1f%%; GALS adds FIFOs %.1f%%\n",
                    100 * base_global, 100 * gals_global,
                    100 * gals_fifo);
        std::printf("paper: global-clock savings offset by increased "
                    "power in other blocks.\n");
    };

    return s;
}

} // namespace gals::bench
