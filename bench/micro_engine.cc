/**
 * @file
 * Engine microbenchmarks (google-benchmark): event queue scheduling,
 * clock-domain ticking, mixed-clock channel traffic, and end-to-end
 * simulation rate of the base and GALS processors.
 */

#include <benchmark/benchmark.h>

#include "core/channel.hh"
#include "core/experiment.hh"
#include "sim/clock_domain.hh"
#include "sim/event_queue.hh"

using namespace gals;

namespace
{

void
BM_EventQueueScheduleService(benchmark::State &state)
{
    EventQueue eq;
    std::vector<std::unique_ptr<CallbackEvent>> events;
    for (int i = 0; i < 64; ++i)
        events.push_back(std::make_unique<CallbackEvent>([] {}));
    std::uint64_t t = 1;
    for (auto _ : state) {
        for (auto &ev : events)
            eq.schedule(ev.get(), t += 3);
        while (eq.serviceOne()) {
        }
    }
    state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_EventQueueScheduleService);

void
BM_ClockDomainTick(benchmark::State &state)
{
    EventQueue eq;
    ClockDomain cd(eq, "clk", 1000);
    std::uint64_t count = 0;
    cd.addTicker([&count] { ++count; });
    cd.start();
    Tick until = 0;
    for (auto _ : state) {
        until += 1000 * 1000; // 1000 cycles
        eq.runUntil(until);
    }
    benchmark::DoNotOptimize(count);
    state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_ClockDomainTick);

void
BM_AsyncFifoTraffic(benchmark::State &state)
{
    EventQueue eq;
    ClockDomain prod(eq, "prod", 1000, 0);
    ClockDomain cons(eq, "cons", 1300, 400);
    Channel<int> ch("ch", ChannelMode::asyncFifo, prod, cons, 16, 2);
    std::uint64_t moved = 0;
    prod.addTicker([&] {
        if (ch.canPush())
            ch.push(42);
    });
    cons.addTicker([&] {
        while (!ch.empty()) {
            ch.pop();
            ++moved;
        }
    });
    prod.start();
    cons.start();
    Tick until = 0;
    for (auto _ : state) {
        until += 1000 * 1000;
        eq.runUntil(until);
    }
    benchmark::DoNotOptimize(moved);
    state.SetItemsProcessed(static_cast<std::int64_t>(moved));
}
BENCHMARK(BM_AsyncFifoTraffic);

void
BM_SimulationRate(benchmark::State &state)
{
    const bool gals_mode = state.range(0) != 0;
    std::uint64_t insts = 0;
    for (auto _ : state) {
        RunConfig rc;
        rc.benchmark = "gcc";
        rc.instructions = 20000;
        rc.gals = gals_mode;
        const RunResults r = runOne(rc);
        benchmark::DoNotOptimize(r.ipcNominal);
        insts += r.committed;
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(insts));
    state.SetLabel(gals_mode ? "gals" : "base");
}
BENCHMARK(BM_SimulationRate)->Arg(0)->Arg(1)
    ->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
