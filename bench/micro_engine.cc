/**
 * @file
 * Engine microbenchmarks (google-benchmark): event queue scheduling,
 * schedule/cancel and hold-model churn, clock-domain ticking,
 * mixed-clock channel traffic, squash churn, and end-to-end
 * simulation rate of the base and GALS processors.
 *
 * Every event-queue benchmark is parameterized over the scheduling
 * engine (0 = calendar, 1 = heap) so one run produces the A/B
 * comparison recorded in docs/PERFORMANCE.md:
 *
 *   galsmicro --benchmark_repetitions=5
 *             --benchmark_report_aggregates_only=true
 *             --benchmark_format=json --benchmark_out=BENCH_micro.json
 */

#include <benchmark/benchmark.h>

#include "core/channel.hh"
#include "core/domain.hh"
#include "core/experiment.hh"
#include "core/snapshot.hh"
#include "sim/clock_domain.hh"
#include "sim/event_queue.hh"
#include "sim/random.hh"

using namespace gals;

namespace
{

QueueEngine
engineArg(const benchmark::State &state)
{
    return state.range(0) == 0 ? QueueEngine::calendar
                               : QueueEngine::heap;
}

void
setEngineLabel(benchmark::State &state, const std::string &extra = "")
{
    std::string label = queueEngineName(engineArg(state));
    if (!extra.empty())
        label += "/" + extra;
    state.SetLabel(label);
}

/** Hold-model event: every firing reschedules itself a pseudo-random
 *  increment into the future, keeping the queue population constant. */
class HoldEvent : public Event
{
  public:
    HoldEvent(EventQueue &eq, Rng &rng) : Event("hold"), eq_(eq),
                                          rng_(rng)
    {
    }

    void
    process() override
    {
        eq_.schedule(this, eq_.now() + 1 + (rng_.next64() & 2047));
    }

  private:
    EventQueue &eq_;
    Rng &rng_;
};

/**
 * Batch schedule + drain: the seed benchmark shape, kept for
 * trajectory continuity.
 */
void
BM_EventQueueScheduleService(benchmark::State &state)
{
    EventQueue eq("bench", engineArg(state));
    std::vector<std::unique_ptr<CallbackEvent>> events;
    for (int i = 0; i < 64; ++i)
        events.push_back(std::make_unique<CallbackEvent>([] {}));
    std::uint64_t t = 1;
    for (auto _ : state) {
        for (auto &ev : events)
            eq.schedule(ev.get(), t += 3);
        while (eq.serviceOne()) {
        }
    }
    setEngineLabel(state);
    state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_EventQueueScheduleService)->Arg(0)->Arg(1);

/**
 * Hold-model churn at a steady queue population: the classic
 * discrete-event-simulator access pattern (pop the minimum, schedule
 * one replacement) and the headline docs/PERFORMANCE.md number.
 */
void
BM_EventQueueHoldChurn(benchmark::State &state)
{
    const std::size_t population =
        static_cast<std::size_t>(state.range(1));
    EventQueue eq("bench", engineArg(state));
    Rng rng(0x9e3779b9u);
    std::vector<std::unique_ptr<HoldEvent>> events;
    for (std::size_t i = 0; i < population; ++i) {
        events.push_back(std::make_unique<HoldEvent>(eq, rng));
        eq.schedule(events.back().get(),
                    1 + (rng.next64() & 2047));
    }
    for (auto _ : state) {
        for (int k = 0; k < 1024; ++k)
            eq.serviceOne();
    }
    setEngineLabel(state, "n=" + std::to_string(population));
    state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_EventQueueHoldChurn)
    ->ArgsProduct({{0, 1}, {16, 256, 4096}});

/**
 * Pure schedule/cancel churn: events are rescheduled to scattered
 * future times without ever firing (the deschedule-heavy pattern of
 * speculative wakeups and DVFS timer moves).
 */
void
BM_EventQueueScheduleCancel(benchmark::State &state)
{
    const std::size_t population =
        static_cast<std::size_t>(state.range(1));
    EventQueue eq("bench", engineArg(state));
    Rng rng(0x2545f491u);
    std::vector<std::unique_ptr<CallbackEvent>> events;
    for (std::size_t i = 0; i < population; ++i) {
        events.push_back(std::make_unique<CallbackEvent>([] {}));
        eq.schedule(events.back().get(), 1 + (rng.next64() & 4095));
    }
    for (auto _ : state) {
        for (std::size_t i = 0; i < population; ++i)
            eq.reschedule(events[i].get(),
                          1 + (rng.next64() & 4095));
    }
    setEngineLabel(state, "n=" + std::to_string(population));
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(population));
}
BENCHMARK(BM_EventQueueScheduleCancel)
    ->ArgsProduct({{0, 1}, {16, 256, 4096}});

void
BM_ClockDomainTick(benchmark::State &state)
{
    EventQueue eq("bench", engineArg(state));
    ClockDomain cd(eq, "clk", 1000);
    std::uint64_t count = 0;
    cd.addTicker([&count] { ++count; });
    cd.start();
    Tick until = 0;
    for (auto _ : state) {
        until += 1000 * 1000; // 1000 cycles
        eq.runUntil(until);
    }
    benchmark::DoNotOptimize(count);
    setEngineLabel(state);
    state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_ClockDomainTick)->Arg(0)->Arg(1);

/** Counter ticker for the devirtualized dispatch path. */
class CountTicker final : public ClockDomain::Ticker
{
  public:
    void tick() override { ++count; }
    std::uint64_t count = 0;
};

/**
 * Typed ticker dispatch: eight Ticker subclass nodes per edge — one
 * virtual call each, no std::function hop. Compare against
 * BM_TickerDispatchFunction for the devirtualization delta.
 */
void
BM_TickerDispatchTyped(benchmark::State &state)
{
    EventQueue eq("bench", engineArg(state));
    ClockDomain cd(eq, "clk", 1000);
    CountTicker tickers[8];
    for (auto &t : tickers)
        cd.addTicker(t);
    cd.start();
    Tick until = 0;
    for (auto _ : state) {
        until += 1000 * 1000; // 1000 cycles x 8 tickers
        eq.runUntil(until);
    }
    benchmark::DoNotOptimize(tickers[0].count);
    setEngineLabel(state);
    state.SetItemsProcessed(state.iterations() * 1000 * 8);
}
BENCHMARK(BM_TickerDispatchTyped)->Arg(0)->Arg(1);

/**
 * The same edge walk through the std::function adapter
 * (FunctionTicker), i.e. the pre-devirtualization dispatch cost.
 */
void
BM_TickerDispatchFunction(benchmark::State &state)
{
    EventQueue eq("bench", engineArg(state));
    ClockDomain cd(eq, "clk", 1000);
    std::uint64_t count = 0;
    for (int i = 0; i < 8; ++i)
        cd.addTicker([&count] { ++count; });
    cd.start();
    Tick until = 0;
    for (auto _ : state) {
        until += 1000 * 1000;
        eq.runUntil(until);
    }
    benchmark::DoNotOptimize(count);
    setEngineLabel(state);
    state.SetItemsProcessed(state.iterations() * 1000 * 8);
}
BENCHMARK(BM_TickerDispatchFunction)->Arg(0)->Arg(1);

/**
 * Same-tick edge batching: five domains with identical period and
 * phase, so every edge is a five-way (tick, priority) tie serviced as
 * one calendar batch — the GALS worst case for pop pressure and the
 * shape the batching fast path targets.
 */
void
BM_EdgeBatchChurn(benchmark::State &state)
{
    EventQueue eq("bench", engineArg(state));
    std::vector<std::unique_ptr<ClockDomain>> domains;
    CountTicker tickers[5];
    for (int i = 0; i < 5; ++i) {
        domains.push_back(std::make_unique<ClockDomain>(
            eq, "clk" + std::to_string(i), 1000));
        domains[i]->addTicker(tickers[i]);
        domains[i]->start();
    }
    Tick until = 0;
    for (auto _ : state) {
        until += 1000 * 1000; // 1000 edges x 5 tied domains
        eq.runUntil(until);
    }
    benchmark::DoNotOptimize(tickers[0].count);
    setEngineLabel(state);
    state.SetItemsProcessed(state.iterations() * 1000 * 5);
}
BENCHMARK(BM_EdgeBatchChurn)->Arg(0)->Arg(1);

/** Steady-state mixed-clock FIFO traffic between two domains. */
void
BM_AsyncFifoTraffic(benchmark::State &state)
{
    EventQueue eq("bench", engineArg(state));
    ClockDomain prod(eq, "prod", 1000, 0);
    ClockDomain cons(eq, "cons", 1300, 400);
    Channel<int> ch("ch", ChannelMode::asyncFifo, prod, cons, 16, 2);
    std::uint64_t moved = 0;
    prod.addTicker([&] {
        if (ch.canPush())
            ch.push(42);
    });
    cons.addTicker([&] {
        while (!ch.empty()) {
            ch.pop();
            ++moved;
        }
    });
    prod.start();
    cons.start();
    Tick until = 0;
    for (auto _ : state) {
        until += 1000 * 1000;
        eq.runUntil(until);
    }
    benchmark::DoNotOptimize(moved);
    setEngineLabel(state);
    state.SetItemsProcessed(static_cast<std::int64_t>(moved));
}
BENCHMARK(BM_AsyncFifoTraffic)->Arg(0)->Arg(1);

/**
 * Channel squash churn: fill, squash half mid-list (the pipeline-
 * flush pattern), drain the survivors. Exercises the intrusive-list
 * O(1) unlink and the entry pool reuse.
 */
void
BM_ChannelSquashChurn(benchmark::State &state)
{
    EventQueue eq("bench", QueueEngine::calendar);
    ClockDomain prod(eq, "prod", 1000, 0);
    ClockDomain cons(eq, "cons", 1000, 500);
    Channel<int> ch("ch", ChannelMode::asyncFifo, prod, cons, 32, 2);
    prod.start();
    cons.start();
    std::uint64_t squashed = 0;
    Tick until = 0;
    for (auto _ : state) {
        until += 4000;
        eq.runUntil(until);
        while (ch.canPush() && ch.rawSize() < 16)
            ch.push(static_cast<int>(ch.rawSize()));
        squashed += ch.squash([](int v) { return v % 2 == 1; });
        until += 40000;
        eq.runUntil(until);
        while (!ch.empty())
            ch.pop();
    }
    benchmark::DoNotOptimize(squashed);
    state.SetItemsProcessed(state.iterations() * 16);
}
BENCHMARK(BM_ChannelSquashChurn);

void
BM_SimulationRate(benchmark::State &state)
{
    const bool gals_mode = state.range(1) != 0;
    // runOne constructs its own EventQueue, so the engine choice rides
    // on the process-wide default for the duration of this benchmark.
    const QueueEngine saved = EventQueue::defaultEngine();
    EventQueue::setDefaultEngine(engineArg(state));
    std::uint64_t insts = 0;
    for (auto _ : state) {
        RunConfig rc;
        rc.benchmark = "gcc";
        rc.instructions = 20000;
        rc.gals = gals_mode;
        const RunResults r = runOne(rc);
        benchmark::DoNotOptimize(r.ipcNominal);
        insts += r.committed;
    }
    EventQueue::setDefaultEngine(saved);
    setEngineLabel(state, gals_mode ? "gals" : "base");
    state.SetItemsProcessed(static_cast<std::int64_t>(insts));
}
BENCHMARK(BM_SimulationRate)
    ->ArgsProduct({{0, 1}, {0, 1}})
    ->Unit(benchmark::kMillisecond);

/**
 * Warm-state memoization payoff: a four-cell DVFS sweep whose cells
 * share one warmup stem at a 10:1 warmup:measure split. The cold leg
 * clears the snapshot cache before every cell, so each one pays the
 * full warmup simulation; the memoized leg produces the stem's
 * snapshot once and restores it into the other three cells. Records
 * are byte-identical either way (tests/test_snapshot.cc) — this
 * benchmark measures only the wall-clock delta the memoization buys.
 */
void
BM_WarmupReuse(benchmark::State &state)
{
    const bool memoized = state.range(0) != 0;
    std::uint64_t insts = 0;
    for (auto _ : state) {
        clearSnapshotCache();
        for (int cell = 0; cell < 4; ++cell) {
            if (!memoized)
                clearSnapshotCache();
            RunConfig rc;
            rc.benchmark = "gcc";
            rc.gals = true;
            rc.instructions = 22000;
            rc.warmupInstructions = 20000;
            rc.dvfs.slowdown[domainIndex(DomainId::fpd)] =
                1.0 + 0.2 * cell;
            const RunResults r = runOne(rc);
            benchmark::DoNotOptimize(r.ipcNominal);
            insts += r.committed;
        }
    }
    clearSnapshotCache();
    state.SetLabel(memoized ? "memoized" : "cold");
    state.SetItemsProcessed(static_cast<std::int64_t>(insts));
}
BENCHMARK(BM_WarmupReuse)
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
