/**
 * @file
 * Full-suite comparison: every requested benchmark on the base and
 * GALS processors, a compact table of everything the paper measures,
 * plus the base processor's energy breakdown. The thin
 * examples/benchmark_suite.cpp main drives this scenario.
 */

#include <cstdio>

#include "bench/bench_util.hh"
#include "bench/register_all.hh"

namespace gals::bench
{

using namespace gals::runner;

Scenario
suiteScenario()
{
    Scenario s;
    s.name = "suite";
    s.figure = "Suite";
    s.description =
        "full base/GALS comparison table over the benchmark suite";

    s.makeRuns = [](const SweepOptions &opts) {
        std::vector<RunConfig> runs;
        for (const auto &name : opts.benchmarkSet())
            appendPair(runs, name, opts.instructions, DvfsSetting(),
                       opts.seed);
        return runs;
    };

    s.reduce = [](const SweepOptions &opts, const SweepView &sweep) {
        const std::vector<RunResults> &results = sweep.runs;
        const auto names = opts.benchmarkSet();
        std::printf("%-10s %6s %6s | %5s %5s %5s | %5s %5s | %5s %5s "
                    "| %5s %5s\n",
                    "bench", "ipcB", "ipcG", "perf", "enrgy", "power",
                    "slipB", "slipG", "wpB%", "wpG%", "accB", "dl1B%");

        MeanTracker perf, energy, power, slip;
        for (std::size_t i = 0; i < names.size(); ++i) {
            const PairResults pr = pairAt(results, i);
            const auto &b = pr.base;
            const auto &g = pr.galsRun;
            std::printf("%-10s %6.3f %6.3f | %5.3f %5.3f %5.3f | "
                        "%5.1f %5.1f | %5.2f %5.2f | %5.3f %5.2f\n",
                        names[i].c_str(), b.ipcNominal, g.ipcNominal,
                        g.ipcNominal / b.ipcNominal, pr.energyRatio(),
                        pr.powerRatio(), b.avgSlipCycles,
                        g.avgSlipCycles, 100 * b.misspecFraction,
                        100 * g.misspecFraction, b.dirAccuracy,
                        100 * b.dl1MissRate);
            perf.add(g.ipcNominal / b.ipcNominal);
            energy.add(pr.energyRatio());
            power.add(pr.powerRatio());
            slip.add(pr.slipRatio());
        }
        std::printf("%-10s %6s %6s | %5.3f %5.3f %5.3f | geomean "
                    "slip ratio %.2f\n",
                    "GEOMEAN", "", "", perf.mean(), energy.mean(),
                    power.mean(), slip.mean());

        // Base-processor energy breakdown for the first benchmark
        // (pair 0's base run).
        const RunResults &r = results.front();
        double total = 0;
        for (const auto &[unit, nj] : r.unitEnergyNj)
            total += nj;
        std::printf("\nenergy breakdown, base, %s (total %.3f mJ, "
                    "%.1f W):\n",
                    names.front().c_str(), total * 1e-6, r.avgPowerW);
        for (const auto &[unit, nj] : r.unitEnergyNj)
            if (nj > 0)
                std::printf("  %-14s %8.3f mJ  %5.1f%%\n",
                            unit.c_str(), nj * 1e-6,
                            100.0 * nj / total);
    };

    return s;
}

} // namespace gals::bench
