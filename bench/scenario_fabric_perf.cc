/**
 * @file
 * Fabric extension: GALS-vs-base performance as the paper pipeline is
 * replicated into an N-core GALS fabric (fabric/system.hh).
 *
 * The grid crosses the benchmark sweep with the --cores / --topology /
 * --traffic axes (defaults: 1 and 4 cores, ring, uniform). Core-count
 * 1 points carry no fabric at all — they are bit-identical to the
 * fig05 grid, so `--scenario fabric_perf --cores 1` reproduces the
 * paper's single-core numbers record for record.
 */

#include <cstdio>

#include "bench/bench_util.hh"
#include "bench/register_all.hh"
#include "fabric/fabric_config.hh"

namespace gals::bench
{

using namespace gals::runner;

namespace
{

/** One grid point of the fabric sweep (the label for pair i). */
struct FabricPoint
{
    unsigned cores;
    std::string topology;
    std::string traffic;
    std::string benchmark;
};

/** The shared grid walk: makeRuns() and reduce() must agree on the
 *  point order, so both derive it from this single expansion. At
 *  cores == 1 the topology/traffic axes collapse (a single core has
 *  no fabric to shape), keeping the 1-core slice identical to the
 *  single-core scenarios. */
std::vector<FabricPoint>
fabricPerfPoints(const SweepOptions &opts)
{
    std::vector<FabricPoint> points;
    for (unsigned c : opts.coreSet({1, 4})) {
        for (const std::string &topo : opts.topologySet({"ring"})) {
            for (const std::string &traffic :
                 opts.trafficSet({"uniform"})) {
                for (const std::string &name : opts.benchmarkSet())
                    points.push_back({c, topo, traffic, name});
                if (c == 1)
                    break;
            }
            if (c == 1)
                break;
        }
    }
    return points;
}

void
applyFabric(RunConfig &cfg, const FabricPoint &p)
{
    if (p.cores <= 1)
        return;
    cfg.fabric.cores = p.cores;
    parseTopologyKind(p.topology, cfg.fabric.topology);
    cfg.fabric.traffic = p.traffic;
}

} // namespace

Scenario
fabricPerfScenario()
{
    Scenario s;
    s.name = "fabric_perf";
    s.figure = "Fabric ext.";
    s.description =
        "GALS vs base across an N-core fabric (cores x topology x "
        "traffic)";

    s.makeRuns = [](const SweepOptions &opts) {
        std::vector<RunConfig> runs;
        for (const FabricPoint &p : fabricPerfPoints(opts)) {
            const std::size_t at = runs.size();
            appendPair(runs, p.benchmark, opts.instructions,
                       DvfsSetting(), opts.seed);
            for (std::size_t k = at; k < runs.size(); ++k)
                applyFabric(runs[k], p);
        }
        return runs;
    };

    s.reduce = [](const SweepOptions &opts, const SweepView &sweep) {
        const std::vector<RunResults> &results = sweep.runs;
        figureHeader("Fabric extension",
                     "GALS vs base across the N-core fabric", opts);

        const std::vector<FabricPoint> points =
            fabricPerfPoints(opts);
        std::printf("%-10s %5s %-7s %-12s %9s %9s %9s %9s\n",
                    "benchmark", "cores", "topo", "traffic",
                    "base IPC", "gals IPC", "rel perf", "lat(cyc)");

        MeanTracker single, multi;
        for (std::size_t i = 0; i < points.size(); ++i) {
            const FabricPoint &p = points[i];
            const PairResults pr = pairAt(results, i);
            const double rel =
                pr.base.ipcNominal > 0.0
                    ? pr.galsRun.ipcNominal / pr.base.ipcNominal
                    : 0.0;
            // Fabric round-trip latency, averaged over the GALS
            // run's cores (0 when the point has no fabric).
            double lat = 0.0;
            for (const CoreResults &c : pr.galsRun.cores)
                lat += c.avgRemoteLatencyCycles;
            if (!pr.galsRun.cores.empty())
                lat /= double(pr.galsRun.cores.size());
            std::printf("%-10s %5u %-7s %-12s %9.3f %9.3f %9.3f "
                        "%9.1f\n",
                        p.benchmark.c_str(), p.cores,
                        p.cores > 1 ? p.topology.c_str() : "-",
                        p.cores > 1 ? p.traffic.c_str() : "-",
                        pr.base.ipcNominal, pr.galsRun.ipcNominal,
                        rel, lat);
            if (rel > 0.0)
                (p.cores > 1 ? multi : single).add(rel);
        }
        std::printf("\nGEOMEAN rel perf: single-core %.3f, "
                    "multi-core %.3f\n",
                    single.mean(), multi.mean());
        std::printf("(single-core points reproduce fig05; the "
                    "multi-core delta is the fabric's added "
                    "synchronization cost)\n");
    };

    return s;
}

} // namespace gals::bench
