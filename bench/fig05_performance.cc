/**
 * @file
 * Paper Figure 5: performance of the GALS model relative to the base
 * model, per benchmark, with all five clock domains at the nominal
 * frequency and random phases.
 *
 * Paper result: benchmarks run 5-15% slower on GALS (average ~10%);
 * fpppp has the lowest performance hit because only one in 67 of its
 * instructions is a branch, so it rarely pays the lengthened
 * misprediction-recovery pipeline.
 */

#include <cstdio>

#include "bench/bench_util.hh"

using namespace gals;
using namespace gals::bench;

int
main()
{
    figureHeader("Figure 5",
                 "GALS performance relative to base (equal clocks)");

    const auto insts = runInstructions();
    std::printf("%-10s %10s %10s %12s\n", "benchmark", "base IPC",
                "gals IPC", "rel. perf");

    MeanTracker mean;
    double fpppp_perf = 0.0, min_perf = 2.0;
    std::string min_name;
    for (const auto &name : runBenchmarks()) {
        const PairResults pr = runPair(name, insts);
        const double rel =
            pr.galsRun.ipcNominal / pr.base.ipcNominal;
        std::printf("%-10s %10.3f %10.3f %12.3f\n", name.c_str(),
                    pr.base.ipcNominal, pr.galsRun.ipcNominal, rel);
        mean.add(rel);
        if (name == "fpppp")
            fpppp_perf = rel;
        if (rel < min_perf) {
            min_perf = rel;
            min_name = name;
        }
    }

    std::printf("%-10s %10s %10s %12.3f\n", "AVERAGE", "", "",
                mean.mean());
    std::printf("\npaper: average slowdown ~10%%, range 5-15%%; "
                "measured: %.1f%%\n",
                100.0 * (1.0 - mean.mean()));
    if (fpppp_perf > 0.0)
        std::printf("paper: fpppp least hurt (1 branch / 67 insts); "
                    "measured fpppp rel perf %.3f (worst: %s %.3f)\n",
                    fpppp_perf, min_name.c_str(), min_perf);
    return 0;
}
