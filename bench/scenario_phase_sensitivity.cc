/**
 * @file
 * Paper section 5.1 (text): "the performance of the GALS processor
 * varies with the relative phase of the various clocks, especially in
 * the case where all the clocks are of the same frequency. This
 * variation is of the order of 0.5%."
 *
 * This scenario runs the GALS processor on one benchmark with many
 * random clock-phase seeds — the same workload every time, only the
 * phases vary (the RunConfig::phaseSeed knob) — and reports the
 * spread of execution time.
 */

#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench/bench_util.hh"
#include "bench/register_all.hh"

namespace gals::bench
{

using namespace gals::runner;

namespace
{

constexpr unsigned phaseSeeds = 16;

} // namespace

Scenario
phaseSensitivityScenario()
{
    Scenario s;
    s.name = "phase";
    s.figure = "Phase sensitivity (section 5.1)";
    s.description =
        "GALS run time spread across random clock phases";

    s.makeRuns = [](const SweepOptions &opts) {
        std::vector<RunConfig> runs;
        for (unsigned seed = 0; seed < phaseSeeds; ++seed) {
            RunConfig rc;
            rc.benchmark = primaryBenchmark(opts, "gcc");
            rc.instructions = opts.instructions;
            rc.gals = true;
            rc.seed = opts.seed;
            rc.phaseSeed = 0x1000 + seed; // same workload, new phases
            runs.push_back(std::move(rc));
        }
        return runs;
    };

    s.reduce = [](const SweepOptions &opts, const SweepView &sweep) {
        const std::vector<RunResults> &results = sweep.runs;
        figureHeader("Phase sensitivity (section 5.1)",
                     "GALS run time spread across random clock phases",
                     opts);

        std::vector<double> ipc;
        for (std::size_t i = 0; i < results.size(); ++i) {
            ipc.push_back(results[i].ipcNominal);
            std::printf("  seed %2zu: ipc %.4f\n", i,
                        results[i].ipcNominal);
        }

        const auto [mn, mx] =
            std::minmax_element(ipc.begin(), ipc.end());
        double sum = 0;
        for (const double v : ipc)
            sum += v;
        const double mean = sum / ipc.size();
        std::printf("\n%s: mean ipc %.4f, min %.4f, max %.4f, spread "
                    "%.2f%%\n",
                    primaryBenchmark(opts, "gcc").c_str(), mean, *mn,
                    *mx, 100.0 * (*mx - *mn) / mean);
        std::printf("paper: variation of the order of 0.5%%\n");
    };

    return s;
}

} // namespace gals::bench
