/**
 * @file
 * Quickstart: run the base (fully synchronous) and GALS processors on
 * one benchmark and print the paper's headline metrics side by side.
 * The thin examples/quickstart.cpp main drives this scenario.
 */

#include <cstdio>

#include "bench/bench_util.hh"
#include "bench/register_all.hh"

namespace gals::bench
{

using namespace gals::runner;

Scenario
quickstartScenario()
{
    Scenario s;
    s.name = "quickstart";
    s.figure = "Quickstart";
    s.description =
        "base vs GALS headline metrics on one benchmark";

    s.makeRuns = [](const SweepOptions &opts) {
        std::vector<RunConfig> runs;
        appendPair(runs, primaryBenchmark(opts, "gcc"),
                   opts.instructions, DvfsSetting(), opts.seed);
        return runs;
    };

    s.reduce = [](const SweepOptions &opts, const SweepView &sweep) {
        const std::vector<RunResults> &results = sweep.runs;
        const std::string bench = primaryBenchmark(opts, "gcc");
        std::printf("galssim quickstart: %s, %llu instructions\n",
                    bench.c_str(),
                    static_cast<unsigned long long>(
                        opts.instructions));

        const PairResults pr = pairAt(results, 0);

        auto row = [](const char *name, double b, double g,
                      const char *unit) {
            std::printf("  %-22s %12.4f %12.4f %-8s (gals/base "
                        "%.3f)\n",
                        name, b, g, unit, b != 0.0 ? g / b : 0.0);
        };

        std::printf("\n%-24s %12s %12s\n", "metric", "base", "gals");
        row("IPC (nominal clock)", pr.base.ipcNominal,
            pr.galsRun.ipcNominal, "");
        row("run time", pr.base.timeSec * 1e6,
            pr.galsRun.timeSec * 1e6, "us");
        row("energy", pr.base.energyJ * 1e3, pr.galsRun.energyJ * 1e3,
            "mJ");
        row("avg power", pr.base.avgPowerW, pr.galsRun.avgPowerW, "W");
        row("avg slip", pr.base.avgSlipCycles,
            pr.galsRun.avgSlipCycles, "cycles");
        row("slip in FIFOs", pr.base.avgFifoSlipCycles,
            pr.galsRun.avgFifoSlipCycles, "cycles");
        row("mis-speculated frac", pr.base.misspecFraction,
            pr.galsRun.misspecFraction, "");
        row("ROB occupancy", pr.base.avgRobOcc, pr.galsRun.avgRobOcc,
            "");
        row("int renames in flight", pr.base.avgIntRenames,
            pr.galsRun.avgIntRenames, "");

        std::printf("\nrelative performance (Fig 5): %.3f\n",
                    pr.galsRun.ipcNominal / pr.base.ipcNominal);
        std::printf("normalized energy (Fig 9): %.3f\n",
                    pr.energyRatio());
        std::printf("normalized power  (Fig 9): %.3f\n",
                    pr.powerRatio());
        std::printf("branch dir accuracy: base %.3f gals %.3f\n",
                    pr.base.dirAccuracy, pr.galsRun.dirAccuracy);
        std::printf("L1D miss rate: %.4f  L1I: %.4f  L2: %.4f\n",
                    pr.base.dl1MissRate, pr.base.il1MissRate,
                    pr.base.l2MissRate);
    };

    return s;
}

} // namespace gals::bench
