/**
 * @file
 * Paper Figure 7: relative slip, split into the portion spent inside
 * the asynchronous FIFOs versus the portion spent in the pipeline
 * proper (issue queues, execution units, ...).
 *
 * Paper result: part of the GALS slip growth is direct FIFO residency,
 * but a further part is *not* accounted for by FIFO time — it is
 * caused by the latency of forwarding results from one queue to
 * another through the FIFOs (wakeup latency), which shows up as extra
 * pipeline wait.
 */

#include <cstdio>

#include "bench/bench_util.hh"
#include "bench/register_all.hh"

namespace gals::bench
{

using namespace gals::runner;

Scenario
fig07Scenario()
{
    Scenario s;
    s.name = "fig07";
    s.figure = "Figure 7";
    s.description = "slip breakdown: FIFO vs pipeline time";

    s.makeRuns = [](const SweepOptions &opts) {
        std::vector<RunConfig> runs;
        for (const auto &name : opts.benchmarkSet())
            appendPair(runs, name, opts.instructions, DvfsSetting(),
                       opts.seed);
        return runs;
    };

    s.reduce = [](const SweepOptions &opts, const SweepView &sweep) {
        const std::vector<RunResults> &results = sweep.runs;
        figureHeader("Figure 7",
                     "slip breakdown: FIFO vs pipeline time "
                     "(normalized to GALS slip)",
                     opts);

        const auto names = opts.benchmarkSet();
        std::printf("%-10s | %8s %8s | %8s %8s %8s | %s\n",
                    "benchmark", "base", "(fifo)", "gals", "(fifo)",
                    "(pipe)", "unexplained-by-FIFO growth");

        for (std::size_t i = 0; i < names.size(); ++i) {
            const PairResults pr = pairAt(results, i);
            const double g = pr.galsRun.avgSlipCycles;
            const double gf = pr.galsRun.avgFifoSlipCycles;
            const double b = pr.base.avgSlipCycles;
            const double bf =
                pr.base.avgFifoSlipCycles; // 0 by definition
            // Slip growth not directly attributable to FIFO
            // residency: result-forwarding (wakeup) latency through
            // the FIFOs.
            const double unexplained = (g - b) - (gf - bf);
            std::printf("%-10s | %8.1f %8.1f | %8.1f %8.1f %8.1f | "
                        "%+7.1f cycles\n",
                        names[i].c_str(), b, bf, g, gf, g - gf,
                        unexplained);
        }
        std::printf("\npaper: base slip has no FIFO component; GALS "
                    "slip splits into FIFO residency plus pipeline "
                    "time, and the growth exceeds FIFO residency "
                    "alone because results forward through FIFOs "
                    "too.\n");
    };

    return s;
}

} // namespace gals::bench
