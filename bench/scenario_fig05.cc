/**
 * @file
 * Paper Figure 5: performance of the GALS model relative to the base
 * model, per benchmark, with all five clock domains at the nominal
 * frequency and random phases.
 *
 * Paper result: benchmarks run 5-15% slower on GALS (average ~10%);
 * fpppp has the lowest performance hit because only one in 67 of its
 * instructions is a branch, so it rarely pays the lengthened
 * misprediction-recovery pipeline.
 */

#include <cstdio>

#include "bench/bench_util.hh"
#include "bench/register_all.hh"
#include "runner/stats.hh"

namespace gals::bench
{

using namespace gals::runner;

Scenario
fig05Scenario()
{
    Scenario s;
    s.name = "fig05";
    s.figure = "Figure 5";
    s.description =
        "GALS performance relative to base, per benchmark";

    s.makeRuns = [](const SweepOptions &opts) {
        std::vector<RunConfig> runs;
        for (const auto &name : opts.benchmarkSet())
            appendPair(runs, name, opts.instructions, DvfsSetting(),
                       opts.seed);
        return runs;
    };

    s.reduce = [](const SweepOptions &opts, const SweepView &sweep) {
        const std::vector<RunResults> &results = sweep.runs;
        figureHeader("Figure 5",
                     "GALS performance relative to base (equal clocks)",
                     opts);

        const auto names = opts.benchmarkSet();
        std::printf("%-10s %10s %10s %12s%s\n", "benchmark",
                    "base IPC", "gals IPC", "rel. perf",
                    sweep.replicas ? "   ± 95% CI" : "");

        MeanTracker mean;
        double fpppp_perf = 0.0, min_perf = 2.0;
        std::string min_name;
        for (std::size_t i = 0; i < names.size(); ++i) {
            const PairResults pr = pairAt(results, i);
            const double rel =
                pr.galsRun.ipcNominal / pr.base.ipcNominal;
            std::printf("%-10s %10.3f %10.3f %12.3f",
                        names[i].c_str(), pr.base.ipcNominal,
                        pr.galsRun.ipcNominal, rel);
            if (sweep.replicas) {
                // Delta-method CI of the gals/base IPC ratio from
                // each side's replica spread (pair i = grid points
                // 2i / 2i+1, the appendPair() layout).
                const MetricSummary *base =
                    sweep.replicas->metric(2 * i, "ipc_nominal");
                const MetricSummary *galsIpc =
                    sweep.replicas->metric(2 * i + 1, "ipc_nominal");
                std::printf("   ± %.3f",
                            ratioCi95(galsIpc->mean, galsIpc->ci95,
                                      base->mean, base->ci95));
            }
            std::printf("\n");
            mean.add(rel);
            if (names[i] == "fpppp")
                fpppp_perf = rel;
            if (rel < min_perf) {
                min_perf = rel;
                min_name = names[i];
            }
        }

        std::printf("%-10s %10s %10s %12.3f\n", "GEOMEAN", "", "",
                    mean.mean());
        std::printf("\npaper: average slowdown ~10%%, range 5-15%%; "
                    "measured: %.1f%%\n",
                    100.0 * (1.0 - mean.mean()));
        if (fpppp_perf > 0.0)
            std::printf("paper: fpppp least hurt (1 branch / 67 "
                        "insts); measured fpppp rel perf %.3f "
                        "(worst: %s %.3f)\n",
                        fpppp_perf, min_name.c_str(), min_perf);
    };

    return s;
}

} // namespace gals::bench
