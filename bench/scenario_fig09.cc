/**
 * @file
 * Paper Figure 9: total energy and average power of the GALS
 * processor, normalized to the base processor.
 *
 * Paper result: eliminating the global clock lowers per-cycle power
 * (about 10% on average), but the longer execution time, extra
 * switching inside the core (higher occupancies, more speculation) and
 * FIFO overhead mean total energy is *not* lower — it is about 1%
 * higher on average. "GALS designs are inherently less efficient when
 * compared to synchronous architectures."
 */

#include <cstdio>

#include "bench/bench_util.hh"
#include "bench/register_all.hh"
#include "runner/stats.hh"

namespace gals::bench
{

using namespace gals::runner;

Scenario
fig09Scenario()
{
    Scenario s;
    s.name = "fig09";
    s.figure = "Figure 9";
    s.description = "GALS energy and power normalized to base";

    s.makeRuns = [](const SweepOptions &opts) {
        std::vector<RunConfig> runs;
        for (const auto &name : opts.benchmarkSet())
            appendPair(runs, name, opts.instructions, DvfsSetting(),
                       opts.seed);
        return runs;
    };

    s.reduce = [](const SweepOptions &opts, const SweepView &sweep) {
        const std::vector<RunResults> &results = sweep.runs;
        figureHeader("Figure 9",
                     "GALS energy and power normalized to base", opts);

        const auto names = opts.benchmarkSet();
        std::printf("%-10s %12s%s %12s%s %12s\n", "benchmark",
                    "energy", sweep.replicas ? "    ± 95% CI" : "",
                    "power", sweep.replicas ? "    ± 95% CI" : "",
                    "perf");

        MeanTracker e, p;
        for (std::size_t i = 0; i < names.size(); ++i) {
            const PairResults pr = pairAt(results, i);
            std::printf("%-10s %12.3f", names[i].c_str(),
                        pr.energyRatio());
            if (sweep.replicas) {
                // gals/base ratio CI per delta method; pair i lives
                // at grid points 2i / 2i+1 (appendPair() layout).
                const MetricSummary *be =
                    sweep.replicas->metric(2 * i, "energy_j");
                const MetricSummary *ge =
                    sweep.replicas->metric(2 * i + 1, "energy_j");
                std::printf("    ± %.3f",
                            ratioCi95(ge->mean, ge->ci95, be->mean,
                                      be->ci95));
            }
            std::printf(" %12.3f", pr.powerRatio());
            if (sweep.replicas) {
                const MetricSummary *bp =
                    sweep.replicas->metric(2 * i, "avg_power_w");
                const MetricSummary *gp =
                    sweep.replicas->metric(2 * i + 1, "avg_power_w");
                std::printf("    ± %.3f",
                            ratioCi95(gp->mean, gp->ci95, bp->mean,
                                      bp->ci95));
            }
            std::printf(" %12.3f\n",
                        pr.galsRun.ipcNominal / pr.base.ipcNominal);
            e.add(pr.energyRatio());
            p.add(pr.powerRatio());
        }
        std::printf("%-10s %12.3f %12.3f\n", "GEOMEAN", e.mean(),
                    p.mean());
        std::printf("\npaper: power reduced ~10%% on average, energy "
                    "~1%% HIGHER on average.\n");
        std::printf("measured: power %+.1f%%, energy %+.1f%%\n",
                    100.0 * (p.mean() - 1.0), 100.0 * (e.mean() - 1.0));
    };

    return s;
}

} // namespace gals::bench
