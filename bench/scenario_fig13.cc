/**
 * @file
 * Paper Figure 13: impact of selective fetch and FP clock slowdown on
 * gcc — an integer benchmark that can afford a much slower floating
 * point unit. The fetch clock is slowed 10%; the FP clock is slowed
 * 50% ("gals-1") or 3x ("gals-2"); voltages scale per equation 1.
 *
 * Paper result: gcc tolerates the slow FP unit — with scalable supply
 * voltages this gives ~11% energy and ~21% power savings for a ~13%
 * performance loss, and the GALS point approaches the ideal
 * (uniformly slowed synchronous) energy bound: by slowing the FP
 * domain the GALS processor trades performance for energy effectively.
 */

#include <cstdio>

#include "bench/bench_util.hh"
#include "bench/register_all.hh"
#include "dvfs/dvfs_policy.hh"

namespace gals::bench
{

using namespace gals::runner;

Scenario
fig13Scenario()
{
    Scenario s;
    s.name = "fig13";
    s.figure = "Figure 13";
    s.description =
        "gcc: fetch -10%, FP clock -50% (gals-1) / 3x (gals-2)";

    s.makeRuns = [](const SweepOptions &opts) {
        std::vector<RunConfig> runs;
        for (unsigned variant : {1u, 2u})
            appendPair(runs, "gcc", opts.instructions,
                       gccFpPolicy(variant).setting, opts.seed);
        return runs;
    };

    s.reduce = [](const SweepOptions &opts, const SweepView &sweep) {
        const std::vector<RunResults> &results = sweep.runs;
        figureHeader("Figure 13",
                     "gcc: fetch -10%, FP clock -50% (gals-1) / 3x "
                     "slower (gals-2)",
                     opts);

        std::printf("%-9s %10s %10s %10s %10s\n", "config", "perf",
                    "energy", "ideal", "power");

        for (unsigned variant : {1u, 2u}) {
            const DvfsPolicy policy = gccFpPolicy(variant);
            const PairResults pr = pairAt(results, variant - 1);
            const double rel =
                pr.galsRun.ipcNominal / pr.base.ipcNominal;
            const IdealScaling ideal =
                idealScalingForPerf(rel, defaultTech());
            std::printf("%-9s %10.3f %10.3f %10.3f %10.3f\n",
                        policy.name.c_str(), rel, pr.energyRatio(),
                        ideal.energyFactor, pr.powerRatio());
        }

        std::printf("\npaper: ~13%% performance loss buys ~11%% "
                    "energy and ~21%% power savings; the gcc "
                    "FP-slowdown point approaches the ideal "
                    "voltage-scaling bound.\n");
    };

    return s;
}

} // namespace gals::bench
