/**
 * @file
 * Paper Figure 6: average slip — the fetch-to-commit latency of each
 * committed instruction — in the base and GALS designs.
 *
 * Paper result: slip increases by ~65% on average in the GALS
 * processor, because the asynchronous channels lengthen the effective
 * pipeline. (Our base machine carries more queueing than the paper's,
 * so part of the FIFO latency hides under existing queue wait; the
 * measured growth is smaller — see EXPERIMENTS.md.)
 */

#include <cstdio>

#include "bench/bench_util.hh"

using namespace gals;
using namespace gals::bench;

int
main()
{
    figureHeader("Figure 6",
                 "average instruction slip (fetch -> commit), cycles");

    const auto insts = runInstructions();
    std::printf("%-10s %12s %12s %10s\n", "benchmark", "base slip",
                "gals slip", "ratio");

    MeanTracker ratio;
    for (const auto &name : runBenchmarks()) {
        const PairResults pr = runPair(name, insts);
        std::printf("%-10s %12.1f %12.1f %10.2f\n", name.c_str(),
                    pr.base.avgSlipCycles, pr.galsRun.avgSlipCycles,
                    pr.slipRatio());
        ratio.add(pr.slipRatio());
    }
    std::printf("%-10s %12s %12s %10.2f\n", "AVERAGE", "", "",
                ratio.mean());
    std::printf("\npaper: slip grows ~65%% in GALS; measured growth: "
                "%.1f%%\n",
                100.0 * (ratio.mean() - 1.0));
    return 0;
}
