/**
 * @file
 * Paper Figure 6: average slip — the fetch-to-commit latency of each
 * committed instruction — in the base and GALS designs.
 *
 * Paper result: slip increases by ~65% on average in the GALS
 * processor, because the asynchronous channels lengthen the effective
 * pipeline. (Our base machine carries more queueing than the paper's,
 * so part of the FIFO latency hides under existing queue wait; the
 * measured growth is smaller — see EXPERIMENTS.md.)
 */

#include <cstdio>

#include "bench/bench_util.hh"
#include "bench/register_all.hh"

namespace gals::bench
{

using namespace gals::runner;

Scenario
fig06Scenario()
{
    Scenario s;
    s.name = "fig06";
    s.figure = "Figure 6";
    s.description =
        "average instruction slip (fetch -> commit), base vs GALS";

    s.makeRuns = [](const SweepOptions &opts) {
        std::vector<RunConfig> runs;
        for (const auto &name : opts.benchmarkSet())
            appendPair(runs, name, opts.instructions, DvfsSetting(),
                       opts.seed);
        return runs;
    };

    s.reduce = [](const SweepOptions &opts, const SweepView &sweep) {
        const std::vector<RunResults> &results = sweep.runs;
        figureHeader("Figure 6",
                     "average instruction slip (fetch -> commit), "
                     "cycles",
                     opts);

        const auto names = opts.benchmarkSet();
        std::printf("%-10s %12s %12s %10s\n", "benchmark", "base slip",
                    "gals slip", "ratio");

        MeanTracker ratio;
        for (std::size_t i = 0; i < names.size(); ++i) {
            const PairResults pr = pairAt(results, i);
            std::printf("%-10s %12.1f %12.1f %10.2f\n",
                        names[i].c_str(), pr.base.avgSlipCycles,
                        pr.galsRun.avgSlipCycles, pr.slipRatio());
            ratio.add(pr.slipRatio());
        }
        std::printf("%-10s %12s %12s %10.2f\n", "GEOMEAN", "", "",
                    ratio.mean());
        std::printf("\npaper: slip grows ~65%% in GALS; measured "
                    "growth: %.1f%%\n",
                    100.0 * (ratio.mean() - 1.0));
    };

    return s;
}

} // namespace gals::bench
