/**
 * @file
 * Ablation: sensitivity of the headline GALS results to the two
 * asynchronous-interface design choices DESIGN.md calls out — the
 * synchronizer depth (syncEdges, i.e. FIFO crossing latency) and the
 * FIFO capacity (decoupling depth).
 *
 * Paper context: section 3.2 motivates the Chelcea-Nowick FIFO as
 * "low-latency" precisely because crossing latency is what GALS pays
 * on every inter-domain transfer; this ablation quantifies that
 * sensitivity for the reproduction's default machine.
 */

#include <cstdio>

#include "bench/bench_util.hh"
#include "bench/register_all.hh"

namespace gals::bench
{

using namespace gals::runner;

namespace
{

const char *const fifoBenchmarks[] = {"gcc", "fpppp"};
const unsigned syncDepths[] = {1u, 2u, 3u, 4u};
const unsigned fifoCaps[] = {8u, 24u, 64u};

} // namespace

Scenario
ablationFifoScenario()
{
    Scenario s;
    s.name = "ablation-fifo";
    s.figure = "Ablation";
    s.description =
        "FIFO synchronizer depth and capacity sensitivity";

    s.makeRuns = [](const SweepOptions &opts) {
        std::vector<RunConfig> runs;
        for (const char *bench : fifoBenchmarks) {
            for (const unsigned se : syncDepths) {
                for (const unsigned cap : fifoCaps) {
                    ProcessorConfig pc;
                    pc.syncEdges = se;
                    pc.fifoCapacity = cap;
                    appendPair(runs, bench, opts.instructions,
                               DvfsSetting(), opts.seed, pc);
                }
            }
        }
        return runs;
    };

    s.reduce = [](const SweepOptions &opts, const SweepView &sweep) {
        const std::vector<RunResults> &results = sweep.runs;
        figureHeader("Ablation",
                     "FIFO synchronizer depth and capacity "
                     "sensitivity (gcc + fpppp)",
                     opts);

        std::printf("%-8s %6s %6s | %8s %8s %8s %8s\n", "bench",
                    "sync", "cap", "perf", "energy", "power", "slipG");

        std::size_t i = 0;
        for (const char *bench : fifoBenchmarks) {
            for (const unsigned se : syncDepths) {
                for (const unsigned cap : fifoCaps) {
                    const PairResults pr = pairAt(results, i++);
                    std::printf(
                        "%-8s %6u %6u | %8.3f %8.3f %8.3f %8.1f\n",
                        bench, se, cap,
                        pr.galsRun.ipcNominal / pr.base.ipcNominal,
                        pr.energyRatio(), pr.powerRatio(),
                        pr.galsRun.avgSlipCycles);
                }
            }
        }

        std::printf("\nreading: deeper synchronizers cost performance "
                    "roughly linearly; capacity beyond ~24 entries "
                    "buys little (the queues decouple, latency "
                    "dominates).\n");
    };

    return s;
}

} // namespace gals::bench
