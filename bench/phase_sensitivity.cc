/**
 * @file
 * Paper section 5.1 (text): "the performance of the GALS processor
 * varies with the relative phase of the various clocks, especially in
 * the case where all the clocks are of the same frequency. This
 * variation is of the order of 0.5%."
 *
 * This harness runs the GALS processor on one benchmark with many
 * random clock-phase seeds and reports the spread of execution time.
 */

#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench/bench_util.hh"

using namespace gals;
using namespace gals::bench;

int
main(int argc, char **argv)
{
    figureHeader("Phase sensitivity (section 5.1)",
                 "GALS run time spread across random clock phases");

    const std::string bench = argc > 1 ? argv[1] : "gcc";
    const auto insts = runInstructions();
    const unsigned seeds = 16;

    std::vector<double> ipc;
    for (unsigned s = 0; s < seeds; ++s) {
        RunConfig rc;
        rc.benchmark = bench;
        rc.instructions = insts;
        rc.gals = true;
        rc.phaseSeed = 0x1000 + s; // same workload, different phases
        const RunResults r = runOne(rc);
        ipc.push_back(r.ipcNominal);
        std::printf("  seed %2u: ipc %.4f\n", s, r.ipcNominal);
    }

    const auto [mn, mx] = std::minmax_element(ipc.begin(), ipc.end());
    double sum = 0;
    for (const double v : ipc)
        sum += v;
    const double mean = sum / ipc.size();
    std::printf("\n%s: mean ipc %.4f, min %.4f, max %.4f, spread "
                "%.2f%%\n",
                bench.c_str(), mean, *mn, *mx,
                100.0 * (*mx - *mn) / mean);
    std::printf("paper: variation of the order of 0.5%%\n");
    return 0;
}
