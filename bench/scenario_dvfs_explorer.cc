/**
 * @file
 * DVFS design-space explorer: sweeps per-domain clock slowdowns for
 * one benchmark on the GALS processor and prints the performance /
 * energy / power frontier, with the ideal uniform-voltage-scaling
 * bound for reference — the methodology behind the paper's section 5.2
 * ("we tried to determine which parts of the processor could be slowed
 * down in an application-dependent manner"). The thin
 * examples/dvfs_explorer.cpp main drives this scenario.
 */

#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "bench/bench_util.hh"
#include "bench/register_all.hh"
#include "dvfs/dvfs_policy.hh"

namespace gals::bench
{

using namespace gals::runner;

namespace
{

/** The explored design points, in run order (after the base run). */
std::vector<std::pair<std::string, DvfsSetting>>
explorerPoints()
{
    std::vector<std::pair<std::string, DvfsSetting>> points;
    points.emplace_back("gals nominal", DvfsSetting());

    // Single-domain sweeps.
    for (const DomainId d : {DomainId::fetch, DomainId::fpd,
                             DomainId::memd, DomainId::intd}) {
        for (const double pct : {20.0, 50.0}) {
            DvfsSetting s;
            s.slowdown[domainIndex(d)] = slowdownFromPercent(pct);
            points.emplace_back(
                std::string(domainName(d)) + " -" +
                    std::to_string(static_cast<int>(pct)) + "%",
                s);
        }
    }

    // The paper's named policies.
    points.emplace_back("paper generic (fig11)",
                        genericSlowdownPolicy().setting);
    points.emplace_back("paper gals-1 (fig13)",
                        gccFpPolicy(1).setting);
    points.emplace_back("paper gals-2 (fig13)",
                        gccFpPolicy(2).setting);
    return points;
}

} // namespace

Scenario
dvfsExplorerScenario()
{
    Scenario s;
    s.name = "dvfs-explorer";
    s.figure = "DVFS explorer";
    s.description =
        "per-domain slowdown frontier for one benchmark";

    s.makeRuns = [](const SweepOptions &opts) {
        std::vector<RunConfig> runs;

        RunConfig base;
        base.benchmark = primaryBenchmark(opts, "gcc");
        base.instructions = opts.instructions;
        base.seed = opts.seed;
        runs.push_back(base);

        for (const auto &[label, setting] : explorerPoints()) {
            RunConfig rc = base;
            rc.gals = true;
            rc.dvfs = setting;
            runs.push_back(std::move(rc));
        }
        return runs;
    };

    s.reduce = [](const SweepOptions &opts, const SweepView &sweep) {
        const std::vector<RunResults> &results = sweep.runs;
        const std::string bench = primaryBenchmark(opts, "gcc");
        std::printf("DVFS explorer: %s, %llu instructions (base = "
                    "fully synchronous at nominal clock/voltage)\n\n",
                    bench.c_str(),
                    static_cast<unsigned long long>(
                        opts.instructions));

        const RunResults &base = results.front();
        std::printf("base: ipc %.3f, %.2f W\n\n", base.ipcNominal,
                    base.avgPowerW);

        std::printf("%-22s %8s %8s %8s %8s\n", "configuration",
                    "perf", "energy", "power", "ideal");

        const auto points = explorerPoints();
        for (std::size_t i = 0; i < points.size(); ++i) {
            const RunResults &g = results[i + 1];
            const double perf = g.ipcNominal / base.ipcNominal;
            const double energy = g.energyJ / base.energyJ;
            const double power = g.avgPowerW / base.avgPowerW;
            const IdealScaling ideal =
                idealScalingForPerf(perf, defaultTech());
            std::printf("%-22s %8.3f %8.3f %8.3f %8.3f %s\n",
                        points[i].first.c_str(), perf, energy, power,
                        ideal.energyFactor,
                        energy < ideal.energyFactor + 0.03
                            ? "(near-ideal)"
                            : "");
        }

        std::printf("\n'ideal' = synchronous core slowed uniformly to "
                    "the same performance with voltage per eq. 1 "
                    "(alpha = %.1f)\n",
                    defaultTech().alpha);
    };

    return s;
}

} // namespace gals::bench
