/**
 * @file
 * Shared helpers for the scenario registrations: figure-header
 * formatting and the geometric-mean tracker for normalized-ratio
 * "average" rows. Run parameters now live in runner::SweepOptions
 * (still overridable via GALSSIM_INSTS / GALSSIM_BENCH, see
 * SweepOptions::fromEnvironment()).
 */

#ifndef BENCH_BENCH_UTIL_HH
#define BENCH_BENCH_UTIL_HH

#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "runner/scenario.hh"

namespace gals::bench
{

/** Print the standard figure header. */
inline void
figureHeader(const char *fig, const char *what,
             const runner::SweepOptions &opts)
{
    std::printf("==============================================="
                "=====================\n");
    std::printf("%s: %s\n", fig, what);
    std::printf("instructions per run: %llu\n",
                static_cast<unsigned long long>(opts.instructions));
    if (opts.replicated())
        std::printf("seeds per point: %zu (metrics are replica "
                    "means; see replication summary)\n",
                    opts.seedList().size());
    std::printf("==============================================="
                "=====================\n");
}

/**
 * Geometric-mean helper for "average" rows over normalized ratios.
 * The geometric mean is the right average for ratios (the paper's
 * relative performance / energy / power rows): it is symmetric under
 * inversion, where the arithmetic mean systematically overstates.
 * Tracked as a running sum of logs; values must be positive.
 */
class MeanTracker
{
  public:
    void
    add(double v)
    {
        logSum_ += std::log(v);
        ++n_;
    }
    double
    mean() const
    {
        return n_ ? std::exp(logSum_ / n_) : 0.0;
    }

  private:
    double logSum_ = 0.0;
    unsigned n_ = 0;
};

/** Arithmetic-mean helper for absolute quantities (fractions,
 *  occupancies) where the geometric mean is not appropriate. */
class ArithmeticMeanTracker
{
  public:
    void
    add(double v)
    {
        sum_ += v;
        ++n_;
    }
    double
    mean() const
    {
        return n_ ? sum_ / n_ : 0.0;
    }

  private:
    double sum_ = 0.0;
    unsigned n_ = 0;
};

/** The single benchmark a one-benchmark scenario targets: the first
 *  requested benchmark, or @p fallback when the sweep is unrestricted. */
inline std::string
primaryBenchmark(const runner::SweepOptions &opts, const char *fallback)
{
    return opts.benchmarks.empty() ? fallback : opts.benchmarks.front();
}

} // namespace gals::bench

#endif // BENCH_BENCH_UTIL_HH
