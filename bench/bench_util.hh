/**
 * @file
 * Shared helpers for the per-figure bench harnesses: common run
 * parameters (overridable via environment), benchmark set selection
 * and table formatting matching the paper's figures.
 */

#ifndef BENCH_BENCH_UTIL_HH
#define BENCH_BENCH_UTIL_HH

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/experiment.hh"

namespace gals::bench
{

/** Instructions per run; override with GALSSIM_INSTS. */
inline std::uint64_t
runInstructions()
{
    if (const char *env = std::getenv("GALSSIM_INSTS"))
        return std::strtoull(env, nullptr, 10);
    return 50000;
}

/** Benchmarks to sweep; override with GALSSIM_BENCH (one name). */
inline std::vector<std::string>
runBenchmarks()
{
    if (const char *env = std::getenv("GALSSIM_BENCH"))
        return {std::string(env)};
    return benchmarkNames();
}

/** Print the standard figure header. */
inline void
figureHeader(const char *fig, const char *what)
{
    std::printf("==============================================="
                "=====================\n");
    std::printf("%s: %s\n", fig, what);
    std::printf("instructions per run: %llu\n",
                static_cast<unsigned long long>(runInstructions()));
    std::printf("==============================================="
                "=====================\n");
}

/** Geometric-mean helper for "average" rows (ratios). */
class MeanTracker
{
  public:
    void
    add(double v)
    {
        sum_ += v;
        ++n_;
    }
    double
    mean() const
    {
        return n_ ? sum_ / n_ : 0.0;
    }

  private:
    double sum_ = 0.0;
    unsigned n_ = 0;
};

} // namespace gals::bench

#endif // BENCH_BENCH_UTIL_HH
