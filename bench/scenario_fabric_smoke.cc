/**
 * @file
 * Fabric extension: the CI smoke point — one base/GALS pair on a
 * 4-core ring with uniform traffic. Small enough for the sharded CI
 * matrix, yet it exercises every fabric layer: System, topology
 * generation, NIC injection/reply, link clock domains and the
 * per-core metrics plumbing.
 */

#include <cstdio>

#include "bench/bench_util.hh"
#include "bench/register_all.hh"
#include "fabric/fabric_config.hh"

namespace gals::bench
{

using namespace gals::runner;

Scenario
fabricSmokeScenario()
{
    Scenario s;
    s.name = "fabric_smoke";
    s.figure = "Fabric ext.";
    s.description =
        "CI smoke: base/GALS pair on a 4-core ring, uniform traffic";

    s.makeRuns = [](const SweepOptions &opts) {
        std::vector<RunConfig> runs;
        const std::string bench = primaryBenchmark(opts, "gcc");
        for (unsigned c : opts.coreSet({4})) {
            for (const std::string &topo :
                 opts.topologySet({"ring"})) {
                for (const std::string &traffic :
                     opts.trafficSet({"uniform"})) {
                    const std::size_t at = runs.size();
                    appendPair(runs, bench, opts.instructions,
                               DvfsSetting(), opts.seed);
                    for (std::size_t k = at; k < runs.size(); ++k) {
                        if (c <= 1)
                            continue;
                        runs[k].fabric.cores = c;
                        parseTopologyKind(topo,
                                          runs[k].fabric.topology);
                        runs[k].fabric.traffic = traffic;
                    }
                    if (c == 1)
                        break;
                }
                if (c == 1)
                    break;
            }
        }
        return runs;
    };

    s.reduce = [](const SweepOptions &opts, const SweepView &sweep) {
        const std::vector<RunResults> &results = sweep.runs;
        figureHeader("Fabric extension", "4-core ring smoke pair",
                     opts);
        for (std::size_t i = 0; i + 1 < results.size(); i += 2) {
            const RunResults &base = results[i];
            const RunResults &galsRun = results[i + 1];
            std::printf("%-10s base IPC %7.3f  gals IPC %7.3f  "
                        "rel %6.3f  cores %zu\n",
                        base.benchmark.c_str(), base.ipcNominal,
                        galsRun.ipcNominal,
                        base.ipcNominal > 0.0
                            ? galsRun.ipcNominal / base.ipcNominal
                            : 0.0,
                        galsRun.cores.empty() ? 1
                                              : galsRun.cores.size());
            for (const CoreResults &c : galsRun.cores)
                std::printf("  core %u: committed %llu  IPC %6.3f  "
                            "msgs %llu/%llu  lat %6.1f cyc\n",
                            c.core,
                            static_cast<unsigned long long>(
                                c.committed),
                            c.ipcNominal,
                            static_cast<unsigned long long>(
                                c.msgsSent),
                            static_cast<unsigned long long>(
                                c.msgsReceived),
                            c.avgRemoteLatencyCycles);
        }
    };

    return s;
}

} // namespace gals::bench
