/**
 * @file
 * Paper Figure 12: impact of selective fetch, memory and FP clock
 * slowdown on ijpeg. The fetch clock is slowed by 10%, the FP clock by
 * 20%, and the memory clock by 0/10/20/50% (gals-00/10/20/50); ijpeg
 * is chosen because of its very low proportion of memory accesses.
 *
 * The "ideal" column is the fully synchronous processor slowed
 * uniformly (single clock, single scaled voltage) to the same
 * performance, which bounds the achievable energy at that performance.
 *
 * Paper result: energy savings between 4 and 13% for performance drops
 * between 15 and 25%; slowing the memory clock is NOT a good
 * performance-energy tradeoff for this benchmark (the GALS energy sits
 * well above the ideal line).
 */

#include <cstdio>

#include "bench/bench_util.hh"
#include "dvfs/dvfs_policy.hh"

using namespace gals;
using namespace gals::bench;

int
main()
{
    figureHeader("Figure 12", "ijpeg: fetch -10%, fp -20%, memory "
                              "clock sweep (gals-00/10/20/50)");

    const auto insts = runInstructions();
    std::printf("%-9s %10s %10s %10s %10s\n", "config", "perf",
                "energy", "ideal", "power");

    for (const DvfsPolicy &policy : ijpegSweepPolicies()) {
        const PairResults pr =
            runPair("ijpeg", insts, policy.setting);
        const double rel =
            pr.galsRun.ipcNominal / pr.base.ipcNominal;
        const IdealScaling ideal =
            idealScalingForPerf(rel, defaultTech());
        std::printf("%-9s %10.3f %10.3f %10.3f %10.3f\n",
                    policy.name.c_str(), rel, pr.energyRatio(),
                    ideal.energyFactor, pr.powerRatio());
    }

    std::printf("\npaper: energy savings 4-13%%, performance drop "
                "15-25%%; memory-clock slowdown is a poor tradeoff "
                "for ijpeg (GALS energy well above the ideal bound).\n");
    return 0;
}
