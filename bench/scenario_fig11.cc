/**
 * @file
 * Paper Figure 11: selective clock slowdown applied generically to
 * three benchmarks — fetch and memory clocks slowed by 10%, floating
 * point clock slowed by 50%, with supply voltages scaled per
 * equation 1 (alpha = 1.6).
 *
 * Paper result: energy and power benefits are decent but performance
 * losses are substantial (~18%); the lesson is that slowdown must be
 * applied selectively per application. Also reproduces the section 5.2
 * perl case: FP clock slowed 3x costs 9% performance and saves 10.8%
 * energy / 18% power.
 */

#include <cstdio>

#include "bench/bench_util.hh"
#include "bench/register_all.hh"
#include "dvfs/dvfs_policy.hh"

namespace gals::bench
{

using namespace gals::runner;

namespace
{

const char *const fig11Benchmarks[] = {"perl", "ijpeg", "gcc"};

} // namespace

Scenario
fig11Scenario()
{
    Scenario s;
    s.name = "fig11";
    s.figure = "Figure 11";
    s.description =
        "generic selective slowdown (fetch -10%, mem -10%, fp -50%)";

    s.makeRuns = [](const SweepOptions &opts) {
        std::vector<RunConfig> runs;
        const DvfsPolicy policy = genericSlowdownPolicy();
        for (const char *name : fig11Benchmarks)
            appendPair(runs, name, opts.instructions, policy.setting,
                       opts.seed);
        // Section 5.2 perl case: FP clock slowed by a factor of 3.
        appendPair(runs, "perl", opts.instructions,
                   perlFpPolicy().setting, opts.seed);
        return runs;
    };

    s.reduce = [](const SweepOptions &opts, const SweepView &sweep) {
        const std::vector<RunResults> &results = sweep.runs;
        figureHeader("Figure 11",
                     "generic selective slowdown "
                     "(fetch -10%, mem -10%, fp -50%)",
                     opts);

        std::printf("%-10s %10s %10s %10s %10s\n", "benchmark", "perf",
                    "energy", "ideal", "power");

        MeanTracker perf;
        std::size_t i = 0;
        for (const char *name : fig11Benchmarks) {
            const PairResults pr = pairAt(results, i++);
            const double rel =
                pr.galsRun.ipcNominal / pr.base.ipcNominal;
            const IdealScaling ideal =
                idealScalingForPerf(rel, defaultTech());
            std::printf("%-10s %10.3f %10.3f %10.3f %10.3f\n", name,
                        rel, pr.energyRatio(), ideal.energyFactor,
                        pr.powerRatio());
            perf.add(rel);
        }
        std::printf("\npaper: performance loss ~18%% with decent "
                    "energy/power benefit; measured loss %.1f%%\n",
                    100.0 * (1.0 - perf.mean()));

        const PairResults pp = pairAt(results, i);
        std::printf("\nperl with FP clock / 3 (section 5.2):\n");
        std::printf("  perf drop %.1f%% (paper 9%%), energy saving "
                    "%.1f%% (paper 10.8%%), power saving %.1f%% "
                    "(paper 18%%)\n",
                    100.0 * (1.0 - pp.galsRun.ipcNominal /
                                       pp.base.ipcNominal),
                    100.0 * (1.0 - pp.energyRatio()),
                    100.0 * (1.0 - pp.powerRatio()));
    };

    return s;
}

} // namespace gals::bench
