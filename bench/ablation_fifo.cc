/**
 * @file
 * Ablation: sensitivity of the headline GALS results to the two
 * asynchronous-interface design choices DESIGN.md calls out — the
 * synchronizer depth (syncEdges, i.e. FIFO crossing latency) and the
 * FIFO capacity (decoupling depth).
 *
 * Paper context: section 3.2 motivates the Chelcea-Nowick FIFO as
 * "low-latency" precisely because crossing latency is what GALS pays
 * on every inter-domain transfer; this ablation quantifies that
 * sensitivity for the reproduction's default machine.
 */

#include <cstdio>

#include "bench/bench_util.hh"

using namespace gals;
using namespace gals::bench;

int
main()
{
    figureHeader("Ablation", "FIFO synchronizer depth and capacity "
                             "sensitivity (gcc + fpppp)");

    const auto insts = runInstructions();
    std::printf("%-8s %6s %6s | %8s %8s %8s %8s\n", "bench", "sync",
                "cap", "perf", "energy", "power", "slipG");

    for (const std::string bench : {"gcc", "fpppp"}) {
        for (const unsigned se : {1u, 2u, 3u, 4u}) {
            for (const unsigned cap : {8u, 24u, 64u}) {
                ProcessorConfig pc;
                pc.syncEdges = se;
                pc.fifoCapacity = cap;
                const PairResults pr =
                    runPair(bench, insts, DvfsSetting(), 0, pc);
                std::printf(
                    "%-8s %6u %6u | %8.3f %8.3f %8.3f %8.1f\n",
                    bench.c_str(), se, cap,
                    pr.galsRun.ipcNominal / pr.base.ipcNominal,
                    pr.energyRatio(), pr.powerRatio(),
                    pr.galsRun.avgSlipCycles);
            }
        }
    }

    std::printf("\nreading: deeper synchronizers cost performance "
                "roughly linearly; capacity beyond ~24 entries buys "
                "little (the queues decouple, latency dominates).\n");
    return 0;
}
